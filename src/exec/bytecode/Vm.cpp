//===- exec/bytecode/Vm.cpp - Bytecode dispatch loop -----------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
//
// Ctx::execCode is the bytecode engine's inner loop: a flat walk over
// one compiled unit's instruction vector with operands in registers.
// It is a drop-in replacement for the tree-walking execBlock and must
// stay *bit-identical* to it -- same simulated cycle charges in the
// same order, same memory-access stream (so cache/TLB/directory state
// and counters match), same failure messages, same recording-mode
// restrictions.  To that end every handler is a transcription of the
// corresponding interpreter case (see EngineImpl.h), the memory
// opcodes fuse the interpreter's fast paths -- per-context
// addressing-translation cache, direct-mapped functional-page cache --
// and everything slow or stateful (full numa::MemorySystem accesses
// with observer/fault hooks, calls, epochs, redistributes, timers,
// distribution queries) goes through the same code the interpreter
// uses.
//
// Dispatch is direct-threaded (computed goto) on GNU-compatible
// compilers, with a portable switch fallback; the VM_CASE/VM_NEXT
// macros keep the two shapes textually identical, and the label table
// is generated from the same X-macro as the opcode enum, so they
// cannot drift apart.
//
// Cycle charges come from a per-entry cost table resolved against the
// live cost model, zeroed when Perf is off, so the hot path has no
// Perf branch for pure operations; memory accesses keep the exact
// memAccess semantics (record in phase 1, MemorySystem::access
// otherwise).
//
//===----------------------------------------------------------------------===//

#include "exec/EngineImpl.h"

#include "exec/bytecode/Bytecode.h"
#include "exec/bytecode/Compiler.h"

using namespace dsm;
using namespace dsm::exec;
using namespace dsm::ir;

#if defined(__GNUC__) || defined(__clang__)
#define DSM_BC_THREADED 1
#else
#define DSM_BC_THREADED 0
#endif

namespace dsm::exec {

std::shared_ptr<const bc::CompiledProgram>
bytecodeFor(const link::Program &Prog) {
  return bc::getOrCompile(Prog);
}

void Engine::Impl::Ctx::execBody(const Procedure *P) {
  if (S.BC)
    if (const bc::Code *C = S.BC->procCode(P)) {
      execCode(*C);
      return;
    }
  execBlock(P->Body);
}

void Engine::Impl::Ctx::execEpochBody(const Stmt &St) {
  if (S.BC)
    if (const bc::Code *C = S.BC->epochCode(&St)) {
      execCode(*C);
      return;
    }
  execBlock(St.Body);
}

void Engine::Impl::Ctx::execCode(const bc::Code &Code) {
  // Per-entry cost table: CostTab[CostNone] stays 0, and Perf off
  // zeroes everything, making every baked charge a plain add.
  uint64_t CostTab[bc::NumCostClasses] = {};
  if (S.Opts.Perf) {
    CostTab[bc::CostIntOp] = S.Costs.IntOp;
    CostTab[bc::CostFpOp] = S.Costs.FpOp;
    CostTab[bc::CostIntDiv] = S.Costs.IntDiv;
    CostTab[bc::CostFpDiv] = S.Costs.FpDiv;
  }

  Value Regs[bc::MaxRegs];
  ArrayInstance *IRegs[bc::MaxInstRegs] = {};
  assert(Code.NumRegs <= bc::MaxRegs &&
         Code.NumInstRegs <= bc::MaxInstRegs &&
         "compiler enforces the register-file bounds");

  // Element address of an already-checked subscript tuple: the
  // interpreter's accessElement tail, shared by the split and fused
  // access opcodes.  Charges the addressing cycles and, for reshaped
  // arrays, issues the simulated processor-array load.
  auto elemAddr = [&](const Expr &E, ArrayInstance *Inst,
                      const int64_t *Idx, unsigned Rank) -> uint64_t {
    const dist::ArrayLayout &L = Inst->Layout;
    if (!Inst->isReshaped()) {
      Clock += CostTab[bc::CostIntOp] * 2 * Rank;
      return Inst->Base + static_cast<uint64_t>(L.linearIndex(Idx)) * 8;
    }
    int64_t Cell, Local;
    if (E.TransSlot >= 0 &&
        static_cast<size_t>(E.TransSlot) < TransCache.size()) {
      translateReshaped(E, Inst, L, Idx, Rank, Cell, Local);
    } else {
      Cell = L.cellOf(Idx);
      Local = L.localLinearIndex(Idx);
    }
    Clock += CostTab[bc::CostIntDiv] * 2 *
             static_cast<uint64_t>(L.spec().numDistributedDims());
    Clock += CostTab[bc::CostIntOp] * 2 * Rank;
    memAccess(Inst->ProcArrayBase + static_cast<uint64_t>(Cell) * 8,
              /*IsWrite=*/false);
    return Inst->PortionBases[static_cast<size_t>(Cell)] +
           static_cast<uint64_t>(Local) * 8;
  };

  // Fused resolve for LoadElemF/StoreElemF: instance resolution, the
  // subscript-count check, and the per-dimension bounds checks in one
  // pass over the index registers.  Returns null after fail()-ing (or
  // with Failed already set by arrayInstance).
  auto fusedResolve = [&](const bc::Insn &In,
                          int64_t *Idx) -> ArrayInstance * {
    const Expr &E = *In.X.E;
    ArrayInstance *Inst = arrayInstance(E.Array);
    if (!Inst || Failed)
      return nullptr;
    const dist::ArrayLayout &L = Inst->Layout;
    if (E.Ops.size() != L.rank()) {
      fail("subscript count mismatch on '" + E.Array->Name + "'");
      return nullptr;
    }
    unsigned Rank = static_cast<unsigned>(E.Ops.size());
    for (unsigned D = 0; D < Rank; ++D) {
      int64_t V = Idx[D] = Regs[In.C + D].I;
      if (V < 1 || V > L.dimSizes()[D]) {
        fail(formatString(
            "subscript %u of '%s' out of bounds: %lld not in [1, %lld]",
            D + 1, E.Array->Name.c_str(), static_cast<long long>(V),
            static_cast<long long>(L.dimSizes()[D])));
        return nullptr;
      }
    }
    return Inst;
  };

  const bc::Insn *Insns = Code.Insns.data();
  int32_t PC = 0;
  const bc::Insn *InP = nullptr;

#if DSM_BC_THREADED
  static const void *const Labels[] = {
#define DSM_BC_DEF_LABEL(Name) &&L_##Name,
      DSM_BC_OP_LIST(DSM_BC_DEF_LABEL)
#undef DSM_BC_DEF_LABEL
  };
#define VM_CASE(Name) L_##Name:
#define VM_NEXT()                                                        \
  do {                                                                   \
    InP = &Insns[PC++];                                                  \
    goto *Labels[static_cast<size_t>(InP->Opc)];                         \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(Name) case bc::Op::Name:
#define VM_NEXT() break
  for (;;) {
    InP = &Insns[PC++];
    switch (InP->Opc) {
#endif

  //===-- Constants and scalars ----------------------------------------===//

  VM_CASE(LdImmI) {
    const bc::Insn &In = *InP;
    Regs[In.A] = Value::ofInt(In.X.IVal);
    VM_NEXT();
  }
  VM_CASE(LdImmF) {
    const bc::Insn &In = *InP;
    Regs[In.A] = Value::ofFp(In.X.FVal);
    VM_NEXT();
  }
  VM_CASE(LdSlot) {
    const bc::Insn &In = *InP;
    Regs[In.A] = Cur->Scalars[static_cast<size_t>(In.Imm)];
    VM_NEXT();
  }
  VM_CASE(LdCommon) {
    const bc::Insn &In = *InP;
    Regs[In.A] = getScalar(In.X.Sym);
    VM_NEXT();
  }
  VM_CASE(StSlot) {
    const bc::Insn &In = *InP;
    size_t Slot = static_cast<size_t>(In.Imm);
    Cur->Scalars[Slot] = Regs[In.A];
    if (Recording && Cur == FrameStack.front().get())
      RootWritten[Slot] = 1;
    VM_NEXT();
  }
  VM_CASE(StCommon) {
    const bc::Insn &In = *InP;
    setScalar(In.X.Sym, Regs[In.A]);
    if (Failed)
      return;
    VM_NEXT();
  }

  //===-- Arithmetic ---------------------------------------------------===//

  VM_CASE(AddI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I + Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(AddF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(Regs[In.B].F + Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(SubI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I - Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(SubF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(Regs[In.B].F - Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(MulI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I * Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(MulF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(Regs[In.B].F * Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(FDivOp) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(Regs[In.B].F / Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(IDivOp) {
    const bc::Insn &In = *InP;
    // The charge lands before the zero check, exactly as evalBin.
    Clock += CostTab[In.CostKind];
    int64_t L = Regs[In.B].I, R = Regs[In.C].I;
    if (R == 0) {
      fail("integer division by zero");
      return;
    }
    Regs[In.A] = Value::ofInt(L / R);
    VM_NEXT();
  }
  VM_CASE(IModOp) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    int64_t L = Regs[In.B].I, R = Regs[In.C].I;
    if (R == 0) {
      fail("integer modulo by zero");
      return;
    }
    Regs[In.A] = Value::ofInt(L % R);
    VM_NEXT();
  }
  VM_CASE(MinI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    int64_t L = Regs[In.B].I, R = Regs[In.C].I;
    Regs[In.A] = Value::ofInt(L < R ? L : R);
    VM_NEXT();
  }
  VM_CASE(MinF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    double L = Regs[In.B].F, R = Regs[In.C].F;
    Regs[In.A] = Value::ofFp(L < R ? L : R);
    VM_NEXT();
  }
  VM_CASE(MaxI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    int64_t L = Regs[In.B].I, R = Regs[In.C].I;
    Regs[In.A] = Value::ofInt(L > R ? L : R);
    VM_NEXT();
  }
  VM_CASE(MaxF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    double L = Regs[In.B].F, R = Regs[In.C].F;
    Regs[In.A] = Value::ofFp(L > R ? L : R);
    VM_NEXT();
  }
  VM_CASE(LtI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I < Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(LtF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].F < Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(LeI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I <= Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(LeF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].F <= Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(GtI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I > Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(GtF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].F > Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(GeI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I >= Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(GeF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].F >= Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(EqI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I == Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(EqF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].F == Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(NeI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].I != Regs[In.C].I);
    VM_NEXT();
  }
  VM_CASE(NeF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(Regs[In.B].F != Regs[In.C].F);
    VM_NEXT();
  }
  VM_CASE(AndL) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] =
        Value::ofInt((Regs[In.B].I != 0) && (Regs[In.C].I != 0));
    VM_NEXT();
  }
  VM_CASE(OrL) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] =
        Value::ofInt((Regs[In.B].I != 0) || (Regs[In.C].I != 0));
    VM_NEXT();
  }
  VM_CASE(NegI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(-Regs[In.B].I);
    VM_NEXT();
  }
  VM_CASE(NegF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(-Regs[In.B].F);
    VM_NEXT();
  }
  VM_CASE(SqrtOp) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind] * In.CostMul;
    double V = Regs[In.B].F;
    if (V < 0) {
      fail("sqrt of negative value");
      return;
    }
    Regs[In.A] = Value::ofFp(std::sqrt(V));
    VM_NEXT();
  }
  VM_CASE(AbsI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(std::abs(Regs[In.B].I));
    VM_NEXT();
  }
  VM_CASE(AbsF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(std::fabs(Regs[In.B].F));
    VM_NEXT();
  }
  VM_CASE(CvtIF) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofFp(static_cast<double>(Regs[In.B].I));
    VM_NEXT();
  }
  VM_CASE(CvtFI) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    Regs[In.A] = Value::ofInt(static_cast<int64_t>(Regs[In.B].F));
    VM_NEXT();
  }

  //===-- Control flow -------------------------------------------------===//

  VM_CASE(Jmp) {
    PC = InP->Imm;
    VM_NEXT();
  }
  VM_CASE(JmpIfZero) {
    const bc::Insn &In = *InP;
    Clock += CostTab[In.CostKind];
    if (Regs[In.A].I == 0)
      PC = In.Imm;
    VM_NEXT();
  }
  VM_CASE(DoRange) {
    const bc::Insn &In = *InP;
    if (Regs[In.C].I == 0) {
      fail("DO loop with zero step", In.X.St->SourceLine);
      return;
    }
    VM_NEXT();
  }
  VM_CASE(DoHead) {
    const bc::Insn &In = *InP;
    int64_t I = Regs[In.A].I, Ub = Regs[In.B].I, Step = Regs[In.C].I;
    if (!(Step > 0 ? I <= Ub : I >= Ub)) {
      PC = In.Imm;
      VM_NEXT();
    }
    size_t Slot = static_cast<size_t>(In.X.IVal);
    Cur->Scalars[Slot] = Value::ofInt(I);
    if (Recording && Cur == FrameStack.front().get())
      RootWritten[Slot] = 1;
    Clock += CostTab[In.CostKind] * In.CostMul; // Increment + branch.
    VM_NEXT();
  }
  VM_CASE(DoHeadCommon) {
    const bc::Insn &In = *InP;
    int64_t I = Regs[In.A].I, Ub = Regs[In.B].I, Step = Regs[In.C].I;
    if (!(Step > 0 ? I <= Ub : I >= Ub)) {
      PC = In.Imm;
      VM_NEXT();
    }
    setScalar(In.X.Sym, Value::ofInt(I));
    Clock += CostTab[In.CostKind] * In.CostMul;
    if (Failed)
      return;
    VM_NEXT();
  }
  VM_CASE(DoLatch) {
    const bc::Insn &In = *InP;
    Regs[In.A].I += Regs[In.C].I;
    PC = In.Imm;
    VM_NEXT();
  }
  VM_CASE(LoopBody) {
    // A fused DoHead (Fuse.cpp).  The head itself is a transcription
    // of the DoHead handler; then, when strips are enabled and every
    // access site's instance is already resolved, the remaining
    // iterations run in one strip-mined batch and the loop exits in a
    // single dispatch.  The first iteration of a loop whose sites are
    // still unresolved falls through to the scalar body -- a natural
    // peel that performs allocation, placement, and observer events in
    // exact interpreter order.
    const bc::Insn &In = *InP;
    int64_t I = Regs[In.A].I, Ub = Regs[In.B].I, Step = Regs[In.C].I;
    if (!(Step > 0 ? I <= Ub : I >= Ub)) {
      PC = In.Imm;
      VM_NEXT();
    }
    size_t Slot = static_cast<size_t>(In.X.IVal);
    Cur->Scalars[Slot] = Value::ofInt(I);
    if (Recording && Cur == FrameStack.front().get())
      RootWritten[Slot] = 1;
    Clock += CostTab[In.CostKind] * In.CostMul; // Increment + branch.
    // Buggify (host-only): a forced bail takes the scalar loop below,
    // which the fusion pass guarantees is bit-identical to the strip.
    if (S.FuseStrips &&
        !DSM_BUGGIFY(S.Chaos, "strip_bail", In.D) &&
        execStrip(Code, Code.Strips[In.D], Regs, CostTab)) {
      if (Failed)
        return;
      PC = In.Imm;
    }
    VM_NEXT();
  }

  //===-- Memory -------------------------------------------------------===//

  VM_CASE(ResolveArr) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    ArrayInstance *Inst = arrayInstance(E.Array);
    if (!Inst || Failed)
      return;
    if ((In.Imm & 1) && E.Ops.size() != Inst->Layout.rank()) {
      fail("subscript count mismatch on '" + E.Array->Name + "'");
      return;
    }
    IRegs[In.A] = Inst;
    VM_NEXT();
  }
  VM_CASE(ChkIdx) {
    const bc::Insn &In = *InP;
    const dist::ArrayLayout &L = IRegs[In.B]->Layout;
    unsigned D = static_cast<unsigned>(In.Imm);
    int64_t V = Regs[In.A].I;
    if (V < 1 || V > L.dimSizes()[D]) {
      fail(formatString(
          "subscript %u of '%s' out of bounds: %lld not in [1, %lld]",
          D + 1, In.X.E->Array->Name.c_str(), static_cast<long long>(V),
          static_cast<long long>(L.dimSizes()[D])));
      return;
    }
    VM_NEXT();
  }
  VM_CASE(LoadElem) {
    const bc::Insn &In = *InP;
    // The A(i1..ir) access: the interpreter's accessElement with the
    // subscripts already evaluated and checked, sharing its
    // translation cache and page cache.
    const Expr &E = *In.X.E;
    unsigned Rank = static_cast<unsigned>(E.Ops.size());
    int64_t Idx[8];
    for (unsigned D = 0; D < Rank; ++D)
      Idx[D] = Regs[In.C + D].I;
    uint64_t Addr = elemAddr(E, IRegs[In.B], Idx, Rank);
    memAccess(Addr, /*IsWrite=*/false);
    uint8_t *Data = funcData(Addr);
    Value V;
    if (E.Type == ScalarType::F64)
      std::memcpy(&V.F, Data, 8);
    else
      std::memcpy(&V.I, Data, 8);
    Regs[In.A] = V;
    VM_NEXT();
  }
  VM_CASE(StoreElem) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    unsigned Rank = static_cast<unsigned>(E.Ops.size());
    int64_t Idx[8];
    for (unsigned D = 0; D < Rank; ++D)
      Idx[D] = Regs[In.C + D].I;
    uint64_t Addr = elemAddr(E, IRegs[In.B], Idx, Rank);
    memAccess(Addr, /*IsWrite=*/true);
    uint8_t *Data = funcData(Addr);
    if (E.Type == ScalarType::F64)
      std::memcpy(Data, &Regs[In.A].F, 8);
    else
      std::memcpy(Data, &Regs[In.A].I, 8);
    VM_NEXT();
  }
  VM_CASE(LoadElemF) {
    const bc::Insn &In = *InP;
    // Fused resolve + checks + load, emitted only when every
    // subscript expression is fail-free (Compiler.cpp), which makes
    // batching the checks after the subscript evaluations
    // unobservable.
    const Expr &E = *In.X.E;
    int64_t Idx[8];
    ArrayInstance *Inst = fusedResolve(In, Idx);
    if (!Inst)
      return;
    uint64_t Addr =
        elemAddr(E, Inst, Idx, static_cast<unsigned>(E.Ops.size()));
    memAccess(Addr, /*IsWrite=*/false);
    uint8_t *Data = funcData(Addr);
    Value V;
    if (E.Type == ScalarType::F64)
      std::memcpy(&V.F, Data, 8);
    else
      std::memcpy(&V.I, Data, 8);
    Regs[In.A] = V;
    VM_NEXT();
  }
  VM_CASE(StoreElemF) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    int64_t Idx[8];
    ArrayInstance *Inst = fusedResolve(In, Idx);
    if (!Inst)
      return;
    uint64_t Addr =
        elemAddr(E, Inst, Idx, static_cast<unsigned>(E.Ops.size()));
    memAccess(Addr, /*IsWrite=*/true);
    uint8_t *Data = funcData(Addr);
    if (E.Type == ScalarType::F64)
      std::memcpy(Data, &Regs[In.A].F, 8);
    else
      std::memcpy(Data, &Regs[In.A].I, 8);
    VM_NEXT();
  }
  VM_CASE(PortionBase) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    ArrayInstance *Inst = IRegs[In.B];
    int64_t Cell = Regs[In.C].I;
    if (Cell < 0 || Cell >= Inst->Layout.grid().totalCells()) {
      fail(formatString("processor-array index %lld out of range on "
                        "'%s'",
                        static_cast<long long>(Cell),
                        E.Array->Name.c_str()));
      return;
    }
    memAccess(Inst->ProcArrayBase + static_cast<uint64_t>(Cell) * 8,
              /*IsWrite=*/false);
    Regs[In.A] = Value::ofInt(static_cast<int64_t>(
        Inst->PortionBases[static_cast<size_t>(Cell)]));
    VM_NEXT();
  }
  VM_CASE(LoadPortion) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    ArrayInstance *Inst = IRegs[In.Imm];
    uint64_t Base = E.Scalar
                        ? static_cast<uint64_t>(getScalar(E.Scalar).I)
                        : static_cast<uint64_t>(Regs[In.B].I);
    int64_t Local = Regs[In.C].I;
    if (Local < 0 || Local >= Inst->Layout.portionElems()) {
      fail(formatString("portion offset %lld out of range on '%s'",
                        static_cast<long long>(Local),
                        E.Array->Name.c_str()));
      return;
    }
    Clock += CostTab[In.CostKind] * In.CostMul; // base + 8*local.
    uint64_t Addr = Base + static_cast<uint64_t>(Local) * 8;
    memAccess(Addr, /*IsWrite=*/false);
    uint8_t *Data = funcData(Addr);
    Value V;
    if (E.Type == ScalarType::F64)
      std::memcpy(&V.F, Data, 8);
    else
      std::memcpy(&V.I, Data, 8);
    Regs[In.A] = V;
    VM_NEXT();
  }
  VM_CASE(StorePortion) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    ArrayInstance *Inst = IRegs[In.Imm];
    uint64_t Base = E.Scalar
                        ? static_cast<uint64_t>(getScalar(E.Scalar).I)
                        : static_cast<uint64_t>(Regs[In.B].I);
    int64_t Local = Regs[In.C].I;
    if (Local < 0 || Local >= Inst->Layout.portionElems()) {
      fail(formatString("portion offset %lld out of range on '%s'",
                        static_cast<long long>(Local),
                        E.Array->Name.c_str()));
      return;
    }
    Clock += CostTab[In.CostKind] * In.CostMul;
    uint64_t Addr = Base + static_cast<uint64_t>(Local) * 8;
    memAccess(Addr, /*IsWrite=*/true);
    uint8_t *Data = funcData(Addr);
    if (E.Type == ScalarType::F64)
      std::memcpy(Data, &Regs[In.A].F, 8);
    else
      std::memcpy(Data, &Regs[In.A].I, 8);
    VM_NEXT();
  }
  VM_CASE(PortionPtrOp) {
    const bc::Insn &In = *InP;
    const Expr &E = *In.X.E;
    ArrayInstance *Inst = IRegs[In.B];
    int64_t Cell = Regs[In.C].I;
    if (Cell < 0 || Cell >= Inst->Layout.grid().totalCells()) {
      fail("processor-array index out of range on '" + E.Array->Name +
           "'");
      return;
    }
    Clock += CostTab[In.CostKind] * In.CostMul;
    memAccess(Inst->ProcArrayBase + static_cast<uint64_t>(Cell) * 8,
              /*IsWrite=*/false);
    Regs[In.A] = Value::ofInt(static_cast<int64_t>(
        Inst->PortionBases[static_cast<size_t>(Cell)]));
    VM_NEXT();
  }

  //===-- Escapes ------------------------------------------------------===//

  VM_CASE(EvalExpr) {
    const bc::Insn &In = *InP;
    Regs[In.A] = evalExpr(*In.X.E);
    if (Failed)
      return;
    VM_NEXT();
  }
  VM_CASE(ExecStmt) {
    execStmt(*InP->X.St);
    if (Failed)
      return;
    VM_NEXT();
  }
  VM_CASE(Ret) { return; }

#if !DSM_BC_THREADED
    }
  }
#endif
#undef VM_CASE
#undef VM_NEXT
}

bool Engine::Impl::Ctx::execStrip(const bc::Code &Code,
                                  const bc::StripInfo &Strip,
                                  Value *Regs,
                                  const uint64_t *CostTab) {
  const bc::Insn &Head = Code.Insns[static_cast<size_t>(Strip.Head)];
  const bc::Insn *Body = Code.Insns.data() + Strip.BodyBegin;
  const int32_t BodyLen = Strip.BodyEnd - Strip.BodyBegin;

  // Per-site strip state: the resolved instance plus the
  // numa::BatchAccess page-run translation for the data access (and,
  // for reshaped arrays, the processor-array indirection).  AddrCycles
  // is the site's addressing charge resolved against the live cost
  // table (intdiv per distributed dimension + intop per rank for
  // reshaped, intop per rank otherwise); the two elemAddr adds commute
  // into one.
  struct SiteState {
    runtime::ArrayInstance *Inst = nullptr;
    const dist::ArrayLayout *L = nullptr;
    unsigned Rank = 0;
    bool Reshaped = false;
    bool UseTrans = false;
    uint64_t AddrCycles = 0;
    /// Column-major extents and element strides, copied out of the
    /// layout so the flat-array address computation inlines here
    /// instead of calling ArrayLayout::linearIndex per access.
    int64_t Dims[8] = {};
    int64_t Strides[8] = {};
    numa::BatchAccess ProcArr;
    /// Run-length batching state (DESIGN.md Section 17): whether the
    /// site writes, and the address the next iteration's access must
    /// hit for an open window to stay valid (last address + 8, since
    /// windows require exactly one element of advance per iteration).
    bool IsWrite = false;
    bool HavePred = false;
    uint64_t PredAddr = 0;
  };
  constexpr int MaxSites = 32;
  if (Strip.NumSites > MaxSites)
    return false;
  // Buggify (host-only): decline the strip this time around, forcing
  // one more scalar peel iteration exactly as an unresolved site would.
  if (DSM_BUGGIFY(S.Chaos, "strip_peel", Strip.Head))
    return false;
  SiteState Sites[MaxSites];

  // Engage only when every site's instance is already memoized: then
  // the per-access arrayInstance call is a pure lookup, so hoisting it
  // here moves no allocation, placement, or observer event.  A site
  // that is not ready (or whose subscript count mismatches -- the
  // scalar path owns that failure) keeps this iteration scalar.
  int NumSites = 0;
  for (int32_t P = 0; P < BodyLen; ++P) {
    const bc::Insn &In = Body[P];
    if (In.Opc != bc::Op::LoadElemF && In.Opc != bc::Op::StoreElemF)
      continue;
    const Expr &E = *In.X.E;
    ArrayInstance *Inst =
        Cur->Arrays[static_cast<size_t>(E.Array->SlotIndex)];
    if (!Inst)
      return false;
    SiteState &St = Sites[NumSites++];
    St.Inst = Inst;
    St.L = &Inst->Layout;
    if (E.Ops.size() != St.L->rank())
      return false;
    St.Rank = static_cast<unsigned>(E.Ops.size());
    if (St.Rank > 8)
      return false;
    St.Reshaped = Inst->isReshaped();
    St.IsWrite = In.Opc == bc::Op::StoreElemF;
    St.UseTrans = E.TransSlot >= 0 &&
                  static_cast<size_t>(E.TransSlot) < TransCache.size();
    int64_t Stride = 1;
    for (unsigned D = 0; D < St.Rank; ++D) {
      St.Dims[D] = St.L->dimSizes()[D];
      St.Strides[D] = Stride;
      Stride *= St.Dims[D];
    }
    St.AddrCycles = CostTab[bc::CostIntOp] * 2 * St.Rank;
    if (St.Reshaped)
      St.AddrCycles +=
          CostTab[bc::CostIntDiv] * 2 *
          static_cast<uint64_t>(St.L->spec().numDistributedDims());
  }

  // Strip-resolved constants: the head's per-iteration charge and the
  // body's pure-op cost skeleton (see StripInfo::PurePrefix).
  const uint64_t HeadCycles = CostTab[Head.CostKind] * Head.CostMul;
  const auto &FullPure = Strip.PurePrefix[static_cast<size_t>(BodyLen)];
  uint64_t TotalPure = 0;
  for (unsigned Cls = 0; Cls < bc::NumCostClasses; ++Cls)
    TotalPure += static_cast<uint64_t>(FullPure[Cls]) * CostTab[Cls];

  const int64_t Step = Regs[Head.C].I;
  const int64_t Ub = Regs[Head.B].I;
  const size_t Slot = static_cast<size_t>(Head.X.IVal);
  const bool MarkRoot = Recording && Cur == FrameStack.front().get();
  const bool Perf = S.Opts.Perf;

  // Run-length batched windows (DESIGN.md Section 17): eligible only
  // when every site is a flat (non-reshaped) access whose address
  // provably advances by exactly one element per iteration -- the
  // fuse-time affine subscript strides combined with this instance's
  // layout strides and the live loop step.  Recording mode keeps the
  // scalar trace; a fault injector disables window opens wholesale
  // inside MemorySystem::openRun (fault-armed pages and per-access
  // buggify draws must see every access).
  bool RunBatch = S.RunBatch && Perf && !Recording && NumSites > 0 &&
                  Strip.Sites.size() == static_cast<size_t>(NumSites);
  if (RunBatch) {
    for (int I = 0; I < NumSites && RunBatch; ++I) {
      const bc::SiteAffinity &A = Strip.Sites[static_cast<size_t>(I)];
      const SiteState &St = Sites[I];
      int64_t ElemStride = 0, PerIter = 0;
      bool Ovf = false;
      for (unsigned D = 0; D < St.Rank; ++D) {
        int64_t T;
        Ovf |= __builtin_mul_overflow(A.DimStride[D], St.Strides[D], &T) ||
               __builtin_add_overflow(ElemStride, T, &ElemStride);
      }
      Ovf |= __builtin_mul_overflow(ElemStride, Step, &PerIter);
      if (!A.Affine || St.Reshaped || Ovf || PerIter != 1)
        RunBatch = false;
    }
    // Buggify (host-only): decline windows for this strip execution;
    // the scalar batchAccess path is bit-identical by construction.
    if (RunBatch && DSM_BUGGIFY(S.Chaos, "run_bail", Strip.Head))
      RunBatch = false;
  }
  // Data-site memos: persistent across executions of this strip for
  // run-batched engines (Ctx::SiteMemos -- consecutive executions
  // usually continue in the L1 line the previous one ended on), fresh
  // locals otherwise so the norunbatch A/B leg measures the unbatched
  // engine as it was.
  numa::BatchAccess LocalMemos[MaxSites];
  numa::BatchAccess *Memos = LocalMemos;
  const bool RunCont = S.RunBatch && Perf && !Recording;
  if (RunCont) {
    StripMemos &M = SiteMemos[&Strip];
    if (M.Proc != CurProc || M.NumSites != NumSites) {
      M.Proc = CurProc;
      M.NumSites = NumSites;
      std::fill_n(M.Data, static_cast<size_t>(NumSites),
                  numa::BatchAccess());
    }
    Memos = M.Data;
  }
  numa::RunWindow RW;
  RW.NumSites = NumSites;
  if (RunBatch)
    for (int I = 0; I < NumSites; ++I) {
      RW.Sites[I].Site = &Memos[I];
      RW.Sites[I].IsWrite = Sites[I].IsWrite;
    }
  int NumPred = 0;     // sites with a predicted next address
  unsigned WinLeft = 0; // iterations the open window still covers
  unsigned WinDone = 0; // iterations completed inside the window

  // The batched memAccess: records in phase 1 and otherwise charges
  // through the site's BatchAccess fast path (MemorySystem falls back
  // to the full per-access pipeline -- with its observer and
  // fault-injector hooks -- the moment an access leaves the settled
  // page run).  Run-batched engines take the run-continuation entry
  // instead: same fallback, but repeated hits on the site's current
  // L1 line skip the whole pipeline (and a fault injector makes
  // runAccess delegate wholesale, so chaos runs see every access).
  auto stripAccess = [&](numa::BatchAccess &Site, uint64_t Addr,
                         bool IsWrite) {
    if (!Perf)
      return;
    if (Recording) {
      Trace.push_back(Addr | (IsWrite ? 1u : 0u));
      return;
    }
    Clock += RunCont ? S.Mem.runAccess(CurProc, Addr, 8, IsWrite, Site)
                     : S.Mem.batchAccess(CurProc, Addr, 8, IsWrite, Site);
  };

  // An iteration cut short by a bounds failure charges the pure ops
  // that preceded the failing access, exactly as the scalar VM did
  // op by op.
  auto chargePrefix = [&](int32_t P) {
    const auto &Pre = Strip.PurePrefix[static_cast<size_t>(P)];
    for (unsigned Cls = 0; Cls < bc::NumCostClasses; ++Cls)
      Clock += static_cast<uint64_t>(Pre[Cls]) * CostTab[Cls];
  };

  // The caller (the LoopBody head) has already stored the induction
  // slot and charged the head for the current iteration; each pass of
  // this loop runs the body, then the latch and next head inline.
  for (;;) {
    // Try to open a window over the coming iterations once every site
    // has a predicted address (i.e. after at least one scalar
    // iteration primed the memos).  openRun bounds the window by L1
    // line geometry; capping it at the remaining iteration count keeps
    // every window wholly inside the loop.
    if (RunBatch && WinLeft == 0 && NumPred == NumSites) {
      uint64_t AbsStep = Step > 0
                             ? static_cast<uint64_t>(Step)
                             : 0 - static_cast<uint64_t>(Step);
      uint64_t Diff = Step > 0
                          ? static_cast<uint64_t>(Ub) -
                                static_cast<uint64_t>(Regs[Head.A].I)
                          : static_cast<uint64_t>(Regs[Head.A].I) -
                                static_cast<uint64_t>(Ub);
      for (int I = 0; I < NumSites; ++I)
        RW.Sites[I].Addr = Sites[I].PredAddr;
      WinLeft = S.Mem.openRun(CurProc, RW, Diff / AbsStep + 1);
      WinDone = 0;
    }
    int Site = 0;
    for (int32_t P = 0; P < BodyLen; ++P) {
      const bc::Insn &In = Body[P];
      switch (In.Opc) {
      case bc::Op::LdImmI:
        Regs[In.A] = Value::ofInt(In.X.IVal);
        break;
      case bc::Op::LdImmF:
        Regs[In.A] = Value::ofFp(In.X.FVal);
        break;
      case bc::Op::LdSlot:
        Regs[In.A] = Cur->Scalars[static_cast<size_t>(In.Imm)];
        break;
      case bc::Op::StSlot: {
        size_t St = static_cast<size_t>(In.Imm);
        Cur->Scalars[St] = Regs[In.A];
        if (MarkRoot)
          RootWritten[St] = 1;
        break;
      }
      case bc::Op::AddI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I + Regs[In.C].I);
        break;
      case bc::Op::AddF:
        Regs[In.A] = Value::ofFp(Regs[In.B].F + Regs[In.C].F);
        break;
      case bc::Op::SubI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I - Regs[In.C].I);
        break;
      case bc::Op::SubF:
        Regs[In.A] = Value::ofFp(Regs[In.B].F - Regs[In.C].F);
        break;
      case bc::Op::MulI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I * Regs[In.C].I);
        break;
      case bc::Op::MulF:
        Regs[In.A] = Value::ofFp(Regs[In.B].F * Regs[In.C].F);
        break;
      case bc::Op::FDivOp:
        Regs[In.A] = Value::ofFp(Regs[In.B].F / Regs[In.C].F);
        break;
      case bc::Op::MinI: {
        int64_t L = Regs[In.B].I, R = Regs[In.C].I;
        Regs[In.A] = Value::ofInt(L < R ? L : R);
        break;
      }
      case bc::Op::MinF: {
        double L = Regs[In.B].F, R = Regs[In.C].F;
        Regs[In.A] = Value::ofFp(L < R ? L : R);
        break;
      }
      case bc::Op::MaxI: {
        int64_t L = Regs[In.B].I, R = Regs[In.C].I;
        Regs[In.A] = Value::ofInt(L > R ? L : R);
        break;
      }
      case bc::Op::MaxF: {
        double L = Regs[In.B].F, R = Regs[In.C].F;
        Regs[In.A] = Value::ofFp(L > R ? L : R);
        break;
      }
      case bc::Op::LtI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I < Regs[In.C].I);
        break;
      case bc::Op::LtF:
        Regs[In.A] = Value::ofInt(Regs[In.B].F < Regs[In.C].F);
        break;
      case bc::Op::LeI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I <= Regs[In.C].I);
        break;
      case bc::Op::LeF:
        Regs[In.A] = Value::ofInt(Regs[In.B].F <= Regs[In.C].F);
        break;
      case bc::Op::GtI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I > Regs[In.C].I);
        break;
      case bc::Op::GtF:
        Regs[In.A] = Value::ofInt(Regs[In.B].F > Regs[In.C].F);
        break;
      case bc::Op::GeI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I >= Regs[In.C].I);
        break;
      case bc::Op::GeF:
        Regs[In.A] = Value::ofInt(Regs[In.B].F >= Regs[In.C].F);
        break;
      case bc::Op::EqI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I == Regs[In.C].I);
        break;
      case bc::Op::EqF:
        Regs[In.A] = Value::ofInt(Regs[In.B].F == Regs[In.C].F);
        break;
      case bc::Op::NeI:
        Regs[In.A] = Value::ofInt(Regs[In.B].I != Regs[In.C].I);
        break;
      case bc::Op::NeF:
        Regs[In.A] = Value::ofInt(Regs[In.B].F != Regs[In.C].F);
        break;
      case bc::Op::AndL:
        Regs[In.A] =
            Value::ofInt((Regs[In.B].I != 0) && (Regs[In.C].I != 0));
        break;
      case bc::Op::OrL:
        Regs[In.A] =
            Value::ofInt((Regs[In.B].I != 0) || (Regs[In.C].I != 0));
        break;
      case bc::Op::NegI:
        Regs[In.A] = Value::ofInt(-Regs[In.B].I);
        break;
      case bc::Op::NegF:
        Regs[In.A] = Value::ofFp(-Regs[In.B].F);
        break;
      case bc::Op::AbsI:
        Regs[In.A] = Value::ofInt(std::abs(Regs[In.B].I));
        break;
      case bc::Op::AbsF:
        Regs[In.A] = Value::ofFp(std::fabs(Regs[In.B].F));
        break;
      case bc::Op::CvtIF:
        Regs[In.A] = Value::ofFp(static_cast<double>(Regs[In.B].I));
        break;
      case bc::Op::CvtFI:
        Regs[In.A] = Value::ofInt(static_cast<int64_t>(Regs[In.B].F));
        break;
      case bc::Op::LoadElemF:
      case bc::Op::StoreElemF: {
        SiteState &St = Sites[Site++];
        const Expr &E = *In.X.E;
        const bool IsWrite = In.Opc == bc::Op::StoreElemF;
        int64_t Idx[8];
        int64_t Linear = 0;
        for (unsigned D = 0; D < St.Rank; ++D) {
          int64_t V = Idx[D] = Regs[In.C + D].I;
          if (V < 1 || V > St.Dims[D]) {
            // Flush the window's completed accesses before failing;
            // cycle charges commute, so settling the bill here keeps
            // the clock identical to the scalar order.
            if (WinLeft) {
              Clock += S.Mem.commitRun(CurProc, RW, WinDone, Site - 1);
              WinLeft = 0;
            }
            chargePrefix(P);
            fail(formatString("subscript %u of '%s' out of bounds: "
                              "%lld not in [1, %lld]",
                              D + 1, E.Array->Name.c_str(),
                              static_cast<long long>(V),
                              static_cast<long long>(St.Dims[D])));
            return true;
          }
          Linear += (V - 1) * St.Strides[D];
        }
        uint64_t Addr;
        if (!St.Reshaped) {
          Clock += St.AddrCycles;
          Addr = St.Inst->Base + static_cast<uint64_t>(Linear) * 8;
        } else {
          int64_t Cell, Local;
          if (St.UseTrans) {
            translateReshaped(E, St.Inst, *St.L, Idx, St.Rank, Cell,
                              Local);
          } else {
            Cell = St.L->cellOf(Idx);
            Local = St.L->localLinearIndex(Idx);
          }
          Clock += St.AddrCycles;
          stripAccess(St.ProcArr,
                      St.Inst->ProcArrayBase +
                          static_cast<uint64_t>(Cell) * 8,
                      /*IsWrite=*/false);
          Addr = St.Inst->PortionBases[static_cast<size_t>(Cell)] +
                 static_cast<uint64_t>(Local) * 8;
        }
        if (WinLeft) {
          if (Addr == St.PredAddr) {
            // Batched: proven pure hit, settled at window commit.
            St.PredAddr += 8;
          } else {
            // Misprediction (defense in depth -- the affine proof
            // makes this unreachable): flush what completed, then go
            // scalar from here on.
            Clock += S.Mem.commitRun(CurProc, RW, WinDone, Site - 1);
            WinLeft = 0;
            stripAccess(Memos[Site - 1], Addr, IsWrite);
            St.PredAddr = Addr + 8;
          }
        } else {
          stripAccess(Memos[Site - 1], Addr, IsWrite);
          if (RunBatch) {
            NumPred += !St.HavePred;
            St.HavePred = true;
            St.PredAddr = Addr + 8;
          }
        }
        uint8_t *Data = funcData(Addr);
        if (IsWrite) {
          if (E.Type == ScalarType::F64)
            std::memcpy(Data, &Regs[In.A].F, 8);
          else
            std::memcpy(Data, &Regs[In.A].I, 8);
        } else {
          Value V;
          if (E.Type == ScalarType::F64)
            std::memcpy(&V.F, Data, 8);
          else
            std::memcpy(&V.I, Data, 8);
          Regs[In.A] = V;
        }
        break;
      }
      default:
        assert(false && "non-strip op in a fused body");
        return true;
      }
    }
    Clock += TotalPure;
    if (WinLeft && ++WinDone == WinLeft) {
      Clock += S.Mem.commitRun(CurProc, RW, WinDone, 0);
      WinLeft = 0;
    }

    // DoLatch, then the next DoHead, inline.
    Regs[Head.A].I += Step;
    int64_t I = Regs[Head.A].I;
    if (!(Step > 0 ? I <= Ub : I >= Ub)) {
      // Windows are capped at the remaining iteration count, so the
      // commit above always ran before an exit; keep a defensive
      // flush anyway.
      if (WinLeft)
        Clock += S.Mem.commitRun(CurProc, RW, WinDone, 0);
      return true;
    }
    Cur->Scalars[Slot] = Value::ofInt(I);
    if (MarkRoot)
      RootWritten[Slot] = 1;
    Clock += HeadCycles;
  }
}

} // namespace dsm::exec
