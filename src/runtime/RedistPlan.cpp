//===- runtime/RedistPlan.cpp - Redistribution transfer planner -----------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/RedistPlan.h"

#include <algorithm>
#include <unordered_map>

#include "numa/MemorySystem.h"

using namespace dsm;
using namespace dsm::runtime;

RedistPlan dsm::runtime::planRedistribution(const numa::MemorySystem &Mem,
                                            const dist::ArrayLayout &NewLayout,
                                            uint64_t Base, int NumProcs) {
  // Target node of every page under the new distribution: the same
  // last-requester rule as initial placement (each processor requests
  // the pages its portion overlaps; the highest-numbered requester wins
  // each page), computed in one pass over same-owner runs of the
  // column-major layout.
  std::unordered_map<uint64_t, int> PageOwner;
  int64_t Total = NewLayout.totalElems();
  int64_t RunStart = 0;
  int64_t RunCell = NewLayout.cellOfLinear(0);
  auto CloseRun = [&](int64_t End) {
    int Proc = static_cast<int>(RunCell) % NumProcs;
    uint64_t FirstPage =
        Mem.pageOf(Base + static_cast<uint64_t>(RunStart) * 8);
    uint64_t LastPage =
        Mem.pageOf(Base + static_cast<uint64_t>(End) * 8 - 1);
    for (uint64_t Page = FirstPage; Page <= LastPage; ++Page) {
      auto [It, Inserted] = PageOwner.try_emplace(Page, Proc);
      if (!Inserted && It->second < Proc)
        It->second = Proc;
    }
  };
  for (int64_t L = 1; L < Total; ++L) {
    int64_t Cell = NewLayout.cellOfLinear(L);
    if (Cell != RunCell) {
      CloseRun(L);
      RunStart = L;
      RunCell = Cell;
    }
  }
  CloseRun(Total);

  RedistPlan Plan;
  Plan.NaivePageMoves = PageOwner.size();

  // Minimal move set: drop every page whose home already matches, then
  // bucket the rest by node shift.  Round k holds the moves with
  // (to - from) mod NumNodes == k, so within a round each node sends to
  // (and receives from) exactly one partner.
  int NumNodes = Mem.config().NumNodes;
  std::vector<std::vector<PageMove>> ByShift(
      static_cast<size_t>(NumNodes));
  for (const auto &[Page, Proc] : PageOwner) {
    int To = Mem.nodeOfProc(Proc);
    int From = Mem.pageHomeNode(Page);
    if (From == To)
      continue;
    int Shift = ((To - From) % NumNodes + NumNodes) % NumNodes;
    ByShift[static_cast<size_t>(Shift)].push_back({Page, From, To});
  }

  uint64_t Budget = Mem.config().RedistScratchFrames;
  if (Budget == 0)
    Budget = 1;
  for (int Shift = 0; Shift < NumNodes; ++Shift) {
    std::vector<PageMove> &Moves = ByShift[static_cast<size_t>(Shift)];
    if (Moves.empty())
      continue;
    // Deterministic execution order within the round (the bucket order
    // above is hash-map order).
    std::sort(Moves.begin(), Moves.end(),
              [](const PageMove &A, const PageMove &B) {
                return A.Page < B.Page;
              });
    Plan.PlannedPageMoves += Moves.size();
    uint64_t InFlight = std::min<uint64_t>(Moves.size(), Budget);
    if (InFlight > Plan.PeakScratchFrames)
      Plan.PeakScratchFrames = InFlight;
    TransferRound Round;
    Round.Shift = Shift;
    Round.Moves = std::move(Moves);
    Plan.Rounds.push_back(std::move(Round));
  }
  Plan.PredictedCycles =
      Plan.PlannedPageMoves * Mem.config().Costs.MigratePageCycles;
  return Plan;
}
