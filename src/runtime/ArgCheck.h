//===- runtime/ArgCheck.h - Runtime argument checking -----------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optional runtime error-detection of the paper's Section 6: when a
/// reshaped array (or a portion of one) is passed as an argument, its
/// address keys a hash table holding the shape/size information; on
/// subroutine entry the incoming address is looked up and the declared
/// formal is verified against it.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_RUNTIME_ARGCHECK_H
#define DSM_RUNTIME_ARGCHECK_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/DistSpec.h"
#include "support/Error.h"

namespace dsm::runtime {

/// The per-call information stored for one reshaped actual argument.
struct ArgInfo {
  bool WholeArray = false;
  /// Whole arrays: the full shape and the reshaped distribution.
  std::vector<int64_t> Dims;
  dist::DistSpec Dist;
  /// Portions: the bytes of the globally contiguous run starting at the
  /// passed element (the "size of the distributed array portion").
  uint64_t PortionBytes = 0;
};

/// Address-keyed hash table of in-flight reshaped arguments.  All
/// operations take an internal lock: host worker threads executing the
/// simulated processors of one epoch register and verify concurrently.
class ArgCheckTable {
public:
  /// Registers an actual argument for the duration of a call.
  void registerArg(uint64_t Addr, ArgInfo Info) {
    std::lock_guard<std::mutex> Lock(Mu);
    Table[Addr].push_back(std::move(Info));
  }

  /// Removes the most recent registration for \p Addr (on return).
  void unregisterArg(uint64_t Addr) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Table.find(Addr);
    if (It == Table.end())
      return;
    It->second.pop_back();
    if (It->second.empty())
      Table.erase(It);
  }

  /// Entry check: nullptr when the address is not a reshaped argument.
  /// The pointer is invalidated by the next register/unregister, so
  /// concurrent callers should prefer verifyFormal (which holds the
  /// lock across the whole check).
  const ArgInfo *lookup(uint64_t Addr) const {
    std::lock_guard<std::mutex> Lock(Mu);
    return lookupUnlocked(Addr);
  }

  /// Verifies a formal declared with shape \p FormalDims (and, for
  /// whole-array formals, distribution \p FormalDist) against the
  /// registered actual at \p Addr.  Returns a failure Error on
  /// mismatch, mirroring the paper's runtime error.
  Error verifyFormal(uint64_t Addr, const std::vector<int64_t> &FormalDims,
                     const dist::DistSpec *FormalDist,
                     const std::string &ProcName,
                     const std::string &FormalName) const;

private:
  const ArgInfo *lookupUnlocked(uint64_t Addr) const {
    auto It = Table.find(Addr);
    return It == Table.end() || It->second.empty() ? nullptr
                                                   : &It->second.back();
  }

  mutable std::mutex Mu;
  // A vector per address tolerates recursive calls passing the same
  // array.
  std::unordered_map<uint64_t, std::vector<ArgInfo>> Table;
};

} // namespace dsm::runtime

#endif // DSM_RUNTIME_ARGCHECK_H
