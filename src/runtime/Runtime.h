//===- runtime/Runtime.h - Distributed-array runtime system -----*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime library of the paper's Section 4: it makes the page
/// placement "operating system calls" for regular distributions (the
/// only OS support the scheme needs), allocates reshaped portions from
/// per-processor pools mapped in local memory, materializes the
/// processor array, and remaps pages for c$redistribute.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_RUNTIME_RUNTIME_H
#define DSM_RUNTIME_RUNTIME_H

#include <cstdint>
#include <vector>

#include "numa/MemorySystem.h"
#include "runtime/ArrayInstance.h"
#include "runtime/RedistPlan.h"
#include "support/Error.h"

namespace dsm::runtime {

/// Per-run runtime services over the simulated machine.
class Runtime {
public:
  /// \p NumProcs is the processor count this run uses (<= machine size).
  Runtime(numa::MemorySystem &Mem, int NumProcs);

  int numProcs() const { return NumProcs; }
  numa::MemorySystem &memory() { return Mem; }

  /// Allocates storage for an array with the given resolved layout.
  ///  * Undistributed: plain virtual allocation (pages fault in under
  ///    the run's default policy).
  ///  * Regular distribution: allocation plus the placement request
  ///    loop -- each processor, in order, requests the pages its
  ///    portion overlaps; the last requester wins (paper Section 8.3).
  ///  * Reshaped: one portion per grid cell from the owning processor's
  ///    local pool, plus the processor array (paper Figure 3).
  ///
  /// Under fault injection a reshaped allocation may degrade to a
  /// contiguous block carved into portions (same descriptor shape, so
  /// lowered code runs unchanged); when it does, a warning is appended
  /// to \p Diags if provided.
  ArrayInstance allocate(const dist::ArrayLayout &Layout,
                         Error *Diags = nullptr);

  /// Implements c$redistribute: plans the minimal transfer schedule
  /// (runtime/RedistPlan.h) for the new spec, then executes it round by
  /// round.  Migration is best-effort: a denied page is retried up to
  /// the injector's budget (each retry charging backoff cycles) and
  /// then left at its old home -- correctness never depends on
  /// placement, only cycles do.  The instance's layout is updated in
  /// place either way.
  ///
  /// \p NewProcs, when positive, resizes the active processor set
  /// before the remap (the c$redistribute ... onto(p') form); the new
  /// layout is computed against the resized run.
  RedistReport redistribute(ArrayInstance &Inst,
                            const dist::DistSpec &NewSpec,
                            int NewProcs = 0);

  /// Shrinks or grows the active processor set mid-run (onto(p')).
  /// Growing extends the per-processor pool table; shrinking keeps the
  /// pool storage of the retired processors valid (their reshaped
  /// portions remain addressable).  Arrays allocated before the resize
  /// keep their old layouts; subsequent allocations, redistributes, and
  /// parallel epochs see the new count.
  void resizeProcs(int NewProcs);

  /// 0-based machine processor executing grid cell \p Cell of any
  /// array: cells map to processors directly.  Versioned by onto(p'):
  /// after a resize this maps against the new active set, which is why
  /// engines must drop translation caches across a redistribute.
  int procOfCell(int64_t Cell) const {
    return static_cast<int>(Cell) % NumProcs;
  }

  /// Bytes of pool storage consumed on behalf of \p Proc (for tests).
  uint64_t poolBytesUsed(int Proc) const { return PoolUsed[Proc]; }

private:
  /// Bump-allocates \p Bytes from \p Proc's node-local pool without
  /// padding portions to page boundaries (paper Section 4.3).
  uint64_t poolAlloc(int Proc, uint64_t Bytes);

  /// Runs the regular-distribution placement request loop for
  /// [\p Base, \p Base + bytes) under \p Layout.
  void placeRegular(const dist::ArrayLayout &Layout, uint64_t Base);

  numa::MemorySystem &Mem;
  int NumProcs;

  struct Pool {
    uint64_t Cur = 0;
    uint64_t End = 0;
  };
  std::vector<Pool> Pools;
  std::vector<uint64_t> PoolUsed;
};

} // namespace dsm::runtime

#endif // DSM_RUNTIME_RUNTIME_H
