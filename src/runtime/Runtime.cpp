//===- runtime/Runtime.cpp - Distributed-array runtime system -------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <cassert>
#include <unordered_map>

#include "fault/Injector.h"

using namespace dsm;
using namespace dsm::runtime;
using namespace dsm::numa;

Runtime::Runtime(MemorySystem &Mem, int NumProcs)
    : Mem(Mem), NumProcs(NumProcs) {
  assert(NumProcs >= 1 && NumProcs <= Mem.numProcs() &&
         "run uses more processors than the machine has");
  Pools.resize(NumProcs);
  PoolUsed.assign(NumProcs, 0);
}

uint64_t Runtime::poolAlloc(int Proc, uint64_t Bytes) {
  assert(Proc >= 0 && Proc < NumProcs && "processor out of range");
  Bytes = (Bytes + 7) & ~7ull; // Keep 8-byte alignment.
  Pool &P = Pools[Proc];
  if (P.Cur + Bytes > P.End) {
    // Grow the pool with a fresh node-local, page-colored chunk.
    uint64_t ChunkBytes = 4 * Mem.pageSize();
    if (ChunkBytes < Bytes)
      ChunkBytes = (Bytes + Mem.pageSize() - 1) / Mem.pageSize() *
                   Mem.pageSize();
    P.Cur = Mem.allocOnNode(ChunkBytes, Mem.nodeOfProc(Proc));
    P.End = P.Cur + ChunkBytes;
    if (numa::SimObserver *Obs = Mem.observer())
      Obs->onPoolGrow(Proc, Mem.nodeOfProc(Proc), ChunkBytes);
  }
  uint64_t Addr = P.Cur;
  P.Cur += Bytes;
  PoolUsed[Proc] += Bytes;
  return Addr;
}

void Runtime::placeRegular(const dist::ArrayLayout &Layout, uint64_t Base) {
  // Each processor requests placement of the pages its portion
  // overlaps; the highest-numbered requester wins each page.  Walking
  // same-owner runs of the column-major layout gives the same result in
  // one pass.
  std::unordered_map<uint64_t, int> PageOwner;
  int64_t Total = Layout.totalElems();
  int64_t RunStart = 0;
  int64_t RunCell = Layout.cellOfLinear(0);
  auto CloseRun = [&](int64_t End) {
    int Proc = procOfCell(RunCell);
    uint64_t FirstPage = Mem.pageOf(Base + static_cast<uint64_t>(RunStart) * 8);
    uint64_t LastPage =
        Mem.pageOf(Base + static_cast<uint64_t>(End) * 8 - 1);
    for (uint64_t Page = FirstPage; Page <= LastPage; ++Page) {
      auto [It, Inserted] = PageOwner.try_emplace(Page, Proc);
      if (!Inserted && It->second < Proc)
        It->second = Proc;
    }
  };
  for (int64_t L = 1; L < Total; ++L) {
    int64_t Cell = Layout.cellOfLinear(L);
    if (Cell != RunCell) {
      CloseRun(L);
      RunStart = L;
      RunCell = Cell;
    }
  }
  CloseRun(Total);
  for (const auto &[Page, Proc] : PageOwner)
    Mem.placePage(Page, Mem.nodeOfProc(Proc), FrameMode::Hashed);
}

ArrayInstance Runtime::allocate(const dist::ArrayLayout &Layout,
                                Error *Diags) {
  ArrayInstance Inst;
  Inst.Layout = Layout;

  if (!Layout.isReshaped()) {
    Inst.Base = Mem.allocVirtual(Layout.totalBytes());
    if (Layout.spec().anyDistributed())
      placeRegular(Layout, Inst.Base);
    return Inst;
  }

  // Reshaped: one densely stored portion per grid cell, allocated from
  // the owning processor's local pool, plus the processor array.
  int64_t Cells = Layout.grid().totalCells();
  Inst.PortionBases.resize(static_cast<size_t>(Cells));
  fault::Injector *Inj = Mem.faultInjector();
  if (Inj && Inj->degradeReshapedAlloc()) {
    // Degraded fallback: the pool allocator is treated as unavailable,
    // so carve the portions out of one contiguous allocation placed
    // block-style on the owners' nodes.  The descriptor keeps the same
    // shape (processor array + portion bases), so lowered PortionElem
    // code -- and therefore every checksum -- is unchanged; only
    // locality suffers.
    uint64_t PB = Layout.portionBytes();
    uint64_t Base =
        Mem.allocVirtual(static_cast<uint64_t>(Cells) * PB);
    for (int64_t Cell = 0; Cell < Cells; ++Cell) {
      uint64_t Portion = Base + static_cast<uint64_t>(Cell) * PB;
      Inst.PortionBases[static_cast<size_t>(Cell)] = Portion;
      Mem.placeRange(Portion, PB, Mem.nodeOfProc(procOfCell(Cell)),
                     FrameMode::Hashed);
    }
    ++Inj->counters().DegradedArrays;
    if (numa::SimObserver *Obs = Mem.observer())
      Obs->onFaultInjected("degraded_array", Mem.pageOf(Base), -1);
    if (Diags)
      Diags->addWarning(
          "reshaped allocation degraded to regular block layout "
          "(fault injection); results are unaffected, locality is");
  } else {
    for (int64_t Cell = 0; Cell < Cells; ++Cell)
      Inst.PortionBases[static_cast<size_t>(Cell)] =
          poolAlloc(procOfCell(Cell), Layout.portionBytes());
  }

  Inst.ProcArrayBase =
      Mem.allocVirtual(static_cast<uint64_t>(Cells) * 8);
  // The pointer table is small, read-only after startup, and cached by
  // every processor; home it on node 0.
  Mem.placeRange(Inst.ProcArrayBase, static_cast<uint64_t>(Cells) * 8,
                 /*Node=*/0, FrameMode::Hashed);
  for (int64_t Cell = 0; Cell < Cells; ++Cell)
    Mem.writeI64(Inst.ProcArrayBase + static_cast<uint64_t>(Cell) * 8,
                 static_cast<int64_t>(
                     Inst.PortionBases[static_cast<size_t>(Cell)]));
  return Inst;
}

void Runtime::resizeProcs(int NewProcs) {
  assert(NewProcs >= 1 && NewProcs <= Mem.numProcs() &&
         "resized run uses more processors than the machine has");
  NumProcs = NewProcs;
  // Grow the pool table for new processors; on a shrink the retired
  // processors' pools stay intact (their portions remain addressable
  // and poolBytesUsed stays meaningful) and are reused on a re-grow.
  if (Pools.size() < static_cast<size_t>(NewProcs)) {
    Pools.resize(static_cast<size_t>(NewProcs));
    PoolUsed.resize(static_cast<size_t>(NewProcs), 0);
  }
}

RedistReport Runtime::redistribute(ArrayInstance &Inst,
                                   const dist::DistSpec &NewSpec,
                                   int NewProcs) {
  assert(!Inst.Layout.isReshaped() &&
         "reshaped arrays cannot be redistributed (checked by sema)");
  RedistReport R;
  if (NewProcs > 0 && NewProcs != NumProcs) {
    resizeProcs(NewProcs);
    R.NewProcs = NewProcs;
  }
  dist::ArrayLayout NewLayout =
      dist::ArrayLayout::make(NewSpec, Inst.Layout.dimSizes(), NumProcs);

  // Plan first: the minimal move set (already-home pages skipped, not
  // re-requested) grouped into all-to-all shift rounds with a bounded
  // scratch footprint.
  RedistPlan Plan = planRedistribution(Mem, NewLayout, Inst.Base, NumProcs);
  R.NaivePageMoves = Plan.NaivePageMoves;
  R.PlannedPageMoves = Plan.PlannedPageMoves;
  R.Rounds = Plan.Rounds.size();
  R.PeakScratchFrames = Plan.PeakScratchFrames;
  R.PredictedCycles = Plan.PredictedCycles;

  // Execute round by round, moves in plan order (deterministic, so the
  // fault injector's sequence-keyed draws hit the same pages on every
  // leg).  Each move is best-effort: a denied migration is retried up
  // to the budget, charging backoff each attempt; a page that still
  // will not move stays at its old home (wrong locality, right
  // values).
  fault::Injector *Inj = Mem.faultInjector();
  unsigned Budget = Inj ? Inj->retryBudget() : 0;
  fault::Buggify *Chaos = Inj ? Inj->buggify() : nullptr;
  for (const TransferRound &Round : Plan.Rounds) {
    for (const PageMove &M : Round.Moves) {
      if (DSM_BUGGIFY(Chaos, "redistribute_partial", M.Page)) {
        // Buggify: the move is abandoned outright (as if every retry
        // were denied) -- the partial-redistribute path with no denial
        // spec armed.
        ++R.PagesFailed;
        continue;
      }
      bool Done = Mem.migratePage(M.Page, M.ToNode);
      for (unsigned Try = 0; !Done && Try < Budget; ++Try) {
        ++R.Retries;
        R.Cycles += Inj->retryBackoffCycles();
        ++Inj->counters().MigrationRetries;
        if (numa::SimObserver *Obs = Mem.observer())
          Obs->onFaultInjected("migrate_retry", M.Page, M.ToNode);
        Done = Mem.migratePage(M.Page, M.ToNode);
      }
      if (Done && DSM_BUGGIFY(Chaos, "redistribute_retry", M.Page)) {
        // Buggify: charge one spurious retry/backoff on a move that
        // succeeded, exercising the backoff accounting alone.
        ++R.Retries;
        R.Cycles += Inj->retryBackoffCycles();
        ++Inj->counters().MigrationRetries;
        if (numa::SimObserver *Obs = Mem.observer())
          Obs->onFaultInjected("migrate_retry", M.Page, M.ToNode);
      }
      if (Done)
        ++R.PagesMoved;
      else
        ++R.PagesFailed;
    }
  }
  Inst.Layout = std::move(NewLayout);
  R.Cycles += R.PagesMoved * Mem.config().Costs.MigratePageCycles;
  return R;
}
