//===- runtime/RedistPlan.h - Redistribution transfer planner ---*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The redistribution planner (DESIGN.md Section 16).  Given an array's
/// current page homes and the placement the new distribution wants, it
/// computes the minimal set of pages that actually change home --
/// already-home pages are skipped instead of re-requested -- and groups
/// the moves into per-(source-node, target-node) transfer rounds
/// scheduled as an all-to-all shift decomposition: round k carries
/// every move whose target node is (source + k) mod NumNodes, so no
/// node receives from two different sources in the same round.  Each
/// in-flight move occupies one scratch frame; a round larger than the
/// machine's `RedistScratchFrames` budget drains in waves, which bounds
/// the peak scratch footprint the plan reports.
///
/// The all-to-all decomposition follows Rink et al. ("Memory-efficient
/// array redistribution through portable collective communication") and
/// the resizable-run semantics follow Sudarsan & Ribbens ("Efficient
/// Multidimensional Data Redistribution for Resizable Parallel
/// Computations"); see PAPERS.md.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_RUNTIME_REDISTPLAN_H
#define DSM_RUNTIME_REDISTPLAN_H

#include <cstdint>
#include <vector>

#include "dist/ArrayLayout.h"

namespace dsm::numa {
class MemorySystem;
}

namespace dsm::runtime {

/// One page whose home changes under the new distribution.
struct PageMove {
  uint64_t Page = 0; ///< Virtual page number.
  int FromNode = 0;  ///< Current home.
  int ToNode = 0;    ///< Home the new distribution wants.

  bool operator==(const PageMove &O) const = default;
};

/// One all-to-all round: every move shares the same node shift
/// (ToNode - FromNode) mod NumNodes, so each node talks to exactly one
/// partner per direction.  Moves are sorted by page number, making the
/// execution order a pure function of the plan.
struct TransferRound {
  int Shift = 0;
  std::vector<PageMove> Moves;
};

/// The transfer schedule for one redistribute.
struct RedistPlan {
  std::vector<TransferRound> Rounds; ///< Non-empty rounds, by shift.
  /// Pages the naive placement loop would re-request (every page the
  /// new distribution maps, home-change or not).
  uint64_t NaivePageMoves = 0;
  /// Pages whose home actually changes -- the moves the plan executes.
  uint64_t PlannedPageMoves = 0;
  /// max over rounds of min(round size, scratch budget).
  uint64_t PeakScratchFrames = 0;
  /// PlannedPageMoves * MigratePageCycles: what execution will charge
  /// when no fault fires.
  uint64_t PredictedCycles = 0;

  uint64_t skippedPages() const {
    return NaivePageMoves - PlannedPageMoves;
  }
};

/// Outcome of one executed redistribute (the public report type,
/// re-exported from api/Dsm.h; field names are stable and shared with
/// the JSONL trace schema and the serve wire protocol).  Without a
/// fault injector every migration succeeds on the first try, so Retries
/// and PagesFailed are zero and Cycles equals PredictedCycles.
struct RedistReport {
  uint64_t Cycles = 0;      ///< Remap cost including retry backoff.
  uint64_t PagesMoved = 0;  ///< Pages now homed per the new spec.
  uint64_t PagesFailed = 0; ///< Pages left behind after the budget.
  uint64_t Retries = 0;     ///< Extra migration attempts spent.

  // Planner accounting (see RedistPlan).
  uint64_t NaivePageMoves = 0;
  uint64_t PlannedPageMoves = 0;
  uint64_t Rounds = 0;
  uint64_t PeakScratchFrames = 0;
  uint64_t PredictedCycles = 0;

  /// Nonzero when the redistribute carried onto(p'): the active
  /// processor count after the transition.
  int NewProcs = 0;

  bool operator==(const RedistReport &O) const = default;

  /// Folds one redistribute into a per-run aggregate (sums, except the
  /// scratch peak, which is a max, and NewProcs, which is the last
  /// resize).
  void accumulate(const RedistReport &R) {
    Cycles += R.Cycles;
    PagesMoved += R.PagesMoved;
    PagesFailed += R.PagesFailed;
    Retries += R.Retries;
    NaivePageMoves += R.NaivePageMoves;
    PlannedPageMoves += R.PlannedPageMoves;
    Rounds += R.Rounds;
    if (R.PeakScratchFrames > PeakScratchFrames)
      PeakScratchFrames = R.PeakScratchFrames;
    PredictedCycles += R.PredictedCycles;
    if (R.NewProcs)
      NewProcs = R.NewProcs;
  }
};

/// Computes the transfer schedule that rehomes the pages of the array
/// at \p Base (already laid out in memory) to the placement \p
/// NewLayout wants under \p NumProcs active processors.  Pure: reads
/// page homes from \p Mem but changes nothing.
RedistPlan planRedistribution(const numa::MemorySystem &Mem,
                              const dist::ArrayLayout &NewLayout,
                              uint64_t Base, int NumProcs);

} // namespace dsm::runtime

#endif // DSM_RUNTIME_REDISTPLAN_H
