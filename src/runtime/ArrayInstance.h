//===- runtime/ArrayInstance.h - Runtime array descriptors ------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime descriptor of one allocated array: its resolved layout
/// plus the simulated virtual addresses of its storage.  Regular arrays
/// have a single column-major base; reshaped arrays have a processor
/// array (a table of portion pointers, paper Figure 3) and one portion
/// base per grid cell.  Views describe a portion of a distributed array
/// passed as a subroutine argument (paper Section 3.2.1): the callee
/// sees a plain Fortran array at some base address.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_RUNTIME_ARRAYINSTANCE_H
#define DSM_RUNTIME_ARRAYINSTANCE_H

#include <cstdint>
#include <vector>

#include "dist/ArrayLayout.h"

namespace dsm::runtime {

/// Runtime state of one array (or array view).
struct ArrayInstance {
  dist::ArrayLayout Layout;

  /// Column-major storage base (regular and undistributed arrays, and
  /// views).  Unused for reshaped arrays.
  uint64_t Base = 0;

  /// Reshaped arrays: virtual address of the processor array (one
  /// 8-byte portion pointer per grid cell) and the portion bases it
  /// holds (mirrored here so the runtime does not have to re-read
  /// simulated memory).
  uint64_t ProcArrayBase = 0;
  std::vector<uint64_t> PortionBases;

  bool IsView = false;

  bool isReshaped() const {
    return Layout.isReshaped() && !IsView;
  }

  /// Address of element \p Idx (1-based, rank entries).
  uint64_t addressOf(const int64_t *Idx) const {
    if (!isReshaped())
      return Base + static_cast<uint64_t>(Layout.linearIndex(Idx)) * 8;
    int64_t Cell = Layout.cellOf(Idx);
    return PortionBases[static_cast<size_t>(Cell)] +
           static_cast<uint64_t>(Layout.localLinearIndex(Idx)) * 8;
  }
};

} // namespace dsm::runtime

#endif // DSM_RUNTIME_ARRAYINSTANCE_H
