//===- runtime/ArgCheck.cpp - Runtime argument checking -------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArgCheck.h"

#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::runtime;

Error ArgCheckTable::verifyFormal(uint64_t Addr,
                                  const std::vector<int64_t> &FormalDims,
                                  const dist::DistSpec *FormalDist,
                                  const std::string &ProcName,
                                  const std::string &FormalName) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const ArgInfo *Info = lookupUnlocked(Addr);
  if (!Info)
    return Error::success(); // Not a reshaped argument; nothing to check.

  if (Info->WholeArray) {
    // "the number of dimensions and the size of each dimension in the
    // actual and the formal parameter must match exactly."
    if (FormalDims.size() != Info->Dims.size())
      return Error::make(formatString(
          "runtime check failed in %s: formal '%s' has rank %zu but the "
          "reshaped actual has rank %zu",
          ProcName.c_str(), FormalName.c_str(), FormalDims.size(),
          Info->Dims.size()));
    for (size_t D = 0; D < FormalDims.size(); ++D)
      if (FormalDims[D] != Info->Dims[D])
        return Error::make(formatString(
            "runtime check failed in %s: formal '%s' dimension %zu is %lld "
            "but the reshaped actual has extent %lld",
            ProcName.c_str(), FormalName.c_str(), D + 1,
            static_cast<long long>(FormalDims[D]),
            static_cast<long long>(Info->Dims[D])));
    if (FormalDist && !(*FormalDist == Info->Dist))
      return Error::make(formatString(
          "runtime check failed in %s: formal '%s' declared %s but the "
          "actual is distributed %s",
          ProcName.c_str(), FormalName.c_str(),
          FormalDist->str().c_str(), Info->Dist.str().c_str()));
    return Error::success();
  }

  // Portion argument: "the declared bounds on the formal parameter are
  // required not to exceed the size of the distributed array portion."
  uint64_t FormalBytes = 8;
  for (int64_t D : FormalDims)
    FormalBytes *= static_cast<uint64_t>(D);
  if (FormalBytes > Info->PortionBytes)
    return Error::make(formatString(
        "runtime check failed in %s: formal '%s' needs %llu bytes but the "
        "distributed array portion passed in has only %llu",
        ProcName.c_str(), FormalName.c_str(),
        static_cast<unsigned long long>(FormalBytes),
        static_cast<unsigned long long>(Info->PortionBytes)));
  return Error::success();
}
