//===- fault/Injector.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault injector the memory system and runtime consult on their
/// slow paths.  It mirrors the numa::SimObserver attachment pattern: a
/// nullable raw pointer held by numa::MemorySystem, checked only where
/// a decision is needed, so a run without an injector pays nothing.
///
/// Every decision is a pure function of (spec seed, decision kind,
/// per-kind sequence number, site key).  All injection points sit on
/// the engine's serial/replay path, where the decision order is
/// provably identical for HostThreads = 1 and N, so a fault schedule
/// is deterministic and bit-reproducible across host parallelism.
///
/// The core invariant (proved by tests/fault/FaultMatrixTest): faults
/// perturb *placement* and *cycles* only.  Functional data is keyed by
/// virtual address and never moves, so no fault schedule can change a
/// program's results.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_FAULT_INJECTOR_H
#define DSM_FAULT_INJECTOR_H

#include <cstdint>
#include <memory>
#include <string>

#include "fault/Buggify.h"
#include "fault/FaultSpec.h"

namespace dsm::fault {

/// What the injector (and the fallback machinery reacting to it) did
/// during one run.  All zero when no injector was attached.
struct FaultCounters {
  uint64_t PlacementsDenied = 0;  ///< placePage requests refused.
  uint64_t PlacementFallbacks = 0; ///< Pages placed on a neighbor node.
  uint64_t MigrationsDenied = 0;  ///< migratePage requests refused.
  uint64_t MigrationRetries = 0;  ///< Redistribute retry attempts.
  uint64_t LatencySpikes = 0;     ///< Memory accesses hit by a spike.
  uint64_t LatencySpikeCycles = 0; ///< Total extra cycles charged.
  uint64_t TlbFillRetries = 0;    ///< Transient TLB-fill failures.
  uint64_t CapacityOverflows = 0; ///< Soft-cap breaches + unbacked pages.
  uint64_t DegradedArrays = 0;    ///< Reshaped allocs degraded to block.

  bool any() const {
    return PlacementsDenied || PlacementFallbacks || MigrationsDenied ||
           MigrationRetries || LatencySpikes || TlbFillRetries ||
           CapacityOverflows || DegradedArrays;
  }

  /// One-line human-readable summary.
  std::string str() const;

  bool operator==(const FaultCounters &O) const = default;
};

/// Seeded decision engine over a FaultSpec.  Not thread-safe by design:
/// every caller sits on the engine's serial/replay path (the same
/// contract as numa::SimObserver).
class Injector {
public:
  explicit Injector(FaultSpec S) : Spec(std::move(S)) {
    if (Spec.BuggifyProb > 0)
      Bug = std::make_unique<Buggify>(Spec.buggifySeedOrDefault(),
                                      Spec.BuggifyProb);
  }

  const FaultSpec &spec() const { return Spec; }
  FaultCounters &counters() { return Counters; }
  const FaultCounters &counters() const { return Counters; }

  /// The buggify registry, or null when the spec leaves it disarmed.
  /// Pass straight to DSM_BUGGIFY; hook firings are accounted here (per
  /// tag), never in FaultCounters, whose cross-leg bit-identity is an
  /// oracle field while host-only hooks may fire per leg.
  Buggify *buggify() { return Bug.get(); }
  const Buggify *buggify() const { return Bug.get(); }

  /// Resets counters and decision sequence numbers (including the
  /// buggify registry); the engine calls this at the start of every run
  /// so repeated runs with one injector see the identical fault
  /// schedule.
  void reset() {
    Counters = FaultCounters();
    PlaceSeq = MigrateSeq = LatencySeq = TlbSeq = DegradeSeq = 0;
    if (Bug)
      Bug->reset();
  }

  //===--------------------------------------------------------------===//
  // Decision points.  Each call consumes one draw of its kind; callers
  // must invoke them from the serial path only.
  //===--------------------------------------------------------------===//

  /// Should this placePage request be refused?
  bool denyPlacePage(uint64_t VPage, int Node) {
    ++PlaceSeq;
    if (scheduled(Spec.PlaceDenyAt, PlaceSeq))
      return true;
    return Spec.PlaceDenyProb > 0 &&
           draw(0x70616765 /*'page'*/, PlaceSeq, VPage ^ hashNode(Node)) <
               Spec.PlaceDenyProb;
  }

  /// Should this migratePage request be refused?  Each retry draws
  /// again, so a bounded retry loop can eventually succeed.
  bool denyMigratePage(uint64_t VPage, int Node) {
    ++MigrateSeq;
    if (scheduled(Spec.MigrateDenyAt, MigrateSeq))
      return true;
    return Spec.MigrateDenyProb > 0 &&
           draw(0x6d696772 /*'migr'*/, MigrateSeq,
                VPage ^ hashNode(Node)) < Spec.MigrateDenyProb;
  }

  /// Extra interconnect cycles for one memory-level access (0 = none).
  uint64_t drawLatencySpike(int FromNode, int HomeNode) {
    if (Spec.LatencySpikeProb <= 0)
      return 0;
    ++LatencySeq;
    if (draw(0x6c617463 /*'latc'*/, LatencySeq,
             hashNode(FromNode) * 31 + hashNode(HomeNode)) >=
        Spec.LatencySpikeProb)
      return 0;
    return Spec.LatencySpikeCycles;
  }

  /// Does this TLB fill transiently fail (forcing a retry walk)?
  bool failTlbFill(int Proc, uint64_t VPage) {
    if (Spec.TlbFailProb <= 0)
      return false;
    ++TlbSeq;
    return draw(0x746c6266 /*'tlbf'*/, TlbSeq,
                VPage ^ hashNode(Proc)) < Spec.TlbFailProb;
  }

  /// Is \p Node at or above its soft frame cap given \p FramesUsed?
  bool overFrameCap(int Node, uint64_t FramesUsed) const {
    int64_t Cap = Spec.frameCapFor(Node);
    return Cap >= 0 && FramesUsed >= static_cast<uint64_t>(Cap);
  }

  /// Should this reshaped allocation degrade to the block fallback?
  bool degradeReshapedAlloc() {
    if (!Spec.DegradeReshaped)
      return false;
    ++DegradeSeq;
    return true;
  }

  unsigned retryBudget() const { return Spec.RetryBudget; }
  uint64_t retryBackoffCycles() const { return Spec.RetryBackoffCycles; }

private:
  /// Uniform double in [0, 1) as a pure function of the spec seed, a
  /// decision-kind salt, the per-kind sequence number, and a site key.
  double draw(uint64_t Salt, uint64_t Seq, uint64_t Key) const;

  static uint64_t hashNode(int N) {
    return static_cast<uint64_t>(N) * 0x9e3779b97f4a7c15ULL;
  }

  static bool scheduled(const std::vector<uint64_t> &Sorted, uint64_t Seq);

  FaultSpec Spec;
  FaultCounters Counters;
  std::unique_ptr<Buggify> Bug; ///< Armed iff Spec.BuggifyProb > 0.
  uint64_t PlaceSeq = 0;
  uint64_t MigrateSeq = 0;
  uint64_t LatencySeq = 0;
  uint64_t TlbSeq = 0;
  uint64_t DegradeSeq = 0;
};

} // namespace dsm::fault

#endif // DSM_FAULT_INJECTOR_H
