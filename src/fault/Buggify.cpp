//===- fault/Buggify.cpp - Seeded rare-branch amplification ---------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "fault/Buggify.h"

#include "support/Rng.h"

using namespace dsm;
using namespace dsm::fault;

namespace {

/// FNV-1a over the tag name: the per-tag salt, so tags draw from
/// independent streams even at equal sequence numbers.
uint64_t hashTag(const char *Tag) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const char *P = Tag; *P; ++P) {
    H ^= static_cast<unsigned char>(*P);
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace

bool Buggify::fire(const char *Tag, uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  TagState &T = Tags[Tag];
  ++T.Seq;
  // Same mixing discipline as Injector::draw: pure in all four inputs.
  uint64_t X = hashMix64(Seed ^ hashMix64(hashTag(Tag))) ^
               hashMix64(T.Seq * 0x9e3779b97f4a7c15ULL + Key);
  bool Fire =
      static_cast<double>(hashMix64(X) >> 11) * 0x1.0p-53 < Prob;
  if (Fire)
    ++T.Fired;
  return Fire;
}

void Buggify::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Tags.clear();
}

std::vector<std::string> Buggify::firedTags() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  for (const auto &[Tag, State] : Tags)
    if (State.Fired)
      Out.push_back(Tag); // Map order is already sorted.
  return Out;
}

uint64_t Buggify::firedCount(const std::string &Tag) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Tags.find(Tag);
  return It != Tags.end() ? It->second.Fired : 0;
}

uint64_t Buggify::totalFired() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t N = 0;
  for (const auto &[Tag, State] : Tags)
    N += State.Fired;
  return N;
}
