//===- fault/FaultSpec.h - Fault-injection configuration --------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative configuration of the fault injector (DESIGN.md Section
/// 10).  A FaultSpec says *which* failures a run should experience --
/// per-node frame-capacity limits, probabilistic or scheduled placement
/// and migration denials, interconnect latency spikes, transient TLB
/// fill failures -- and with what seed, so a fault schedule is fully
/// deterministic and reproducible across host thread counts.
///
/// Specs are parsed from a small key = value text format (the
/// --fault-spec file of tools/dsm_run):
///
///   # placement pressure plus flaky migrations
///   seed = 42
///   frame_cap = 24          # soft per-node frame limit (all nodes)
///   frame_cap.3 = 4         # override for node 3
///   place_deny_prob = 0.25
///   place_deny_at = 1,5,9   # additionally deny these decision indices
///   migrate_deny_prob = 0.5
///   migrate_deny_at = 2
///   latency_spike_prob = 0.1
///   latency_spike_cycles = 2000
///   tlb_fail_prob = 0.05
///   degrade_reshaped = 1
///   retry_budget = 3
///   retry_backoff_cycles = 200
///   buggify_prob = 0.25     # arm DSM_BUGGIFY rare-branch hooks
///   buggify_seed = 7        # 0 / absent = derive from seed
///
//===----------------------------------------------------------------------===//

#ifndef DSM_FAULT_FAULTSPEC_H
#define DSM_FAULT_FAULTSPEC_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/Error.h"

namespace dsm::fault {

/// One run's fault schedule.  A default-constructed spec injects
/// nothing; every knob is independent and composable.
struct FaultSpec {
  /// Seed of every probabilistic decision.  Decisions are keyed by
  /// (seed, decision kind, per-kind sequence number), so a schedule is
  /// a pure function of the serial decision order -- identical for
  /// HostThreads = 1 and N (all injection points sit on the engine's
  /// serial/replay path).
  uint64_t Seed = 1;

  /// Probability that an explicit placePage request is refused.
  double PlaceDenyProb = 0.0;
  /// Decision indices (1-based, per placePage call) denied regardless
  /// of probability; sorted ascending by the parser.
  std::vector<uint64_t> PlaceDenyAt;

  /// Probability that a migratePage request is refused (each retry
  /// draws a fresh decision).
  double MigrateDenyProb = 0.0;
  std::vector<uint64_t> MigrateDenyAt;

  /// Probability that a memory-level access suffers an interconnect
  /// latency spike of LatencySpikeCycles extra cycles.
  double LatencySpikeProb = 0.0;
  uint64_t LatencySpikeCycles = 1000;

  /// Probability that a TLB fill transiently fails and is retried
  /// (costing a second TLB-miss penalty).
  double TlbFailProb = 0.0;

  /// Soft per-node frame capacity: placement prefers nodes below the
  /// cap and falls back by topology distance.  -1 means uncapped.  The
  /// cap is soft -- when every node is capped the allocator breaches it
  /// rather than fail, counting a capacity overflow -- so semantics
  /// never depend on it.
  int64_t FrameCap = -1;
  /// Per-node overrides of FrameCap.
  std::map<int, int64_t> NodeFrameCaps;

  /// Force reshaped-array allocation to degrade to a contiguous
  /// block-placed fallback (the same degradation real memory pressure
  /// triggers), exercising the addressing-compatibility invariant.
  bool DegradeReshaped = false;

  /// Bounded retry budget for denied migrations (runtime::redistribute)
  /// and the simulated backoff cost charged per retry.
  unsigned RetryBudget = 3;
  uint64_t RetryBackoffCycles = 200;

  /// Probability that each armed DSM_BUGGIFY hook fires (DESIGN.md
  /// Section 14).  0 disables the buggify layer entirely: the Injector
  /// builds no registry and every hook is one null pointer test.
  double BuggifyProb = 0.0;
  /// Seed of the buggify firing schedule; 0 derives it from Seed so a
  /// spec with one seed line still perturbs both layers.
  uint64_t BuggifySeed = 0;

  /// True when any knob can actually inject a fault.
  bool enabled() const {
    return PlaceDenyProb > 0 || !PlaceDenyAt.empty() ||
           MigrateDenyProb > 0 || !MigrateDenyAt.empty() ||
           LatencySpikeProb > 0 || TlbFailProb > 0 || FrameCap >= 0 ||
           !NodeFrameCaps.empty() || DegradeReshaped || BuggifyProb > 0;
  }

  /// Effective seed of the buggify layer.
  uint64_t buggifySeedOrDefault() const {
    return BuggifySeed ? BuggifySeed : Seed ^ 0xb166u /*'bugg'-ish*/;
  }

  /// Effective frame cap of \p Node, or -1 when uncapped.
  int64_t frameCapFor(int Node) const {
    auto It = NodeFrameCaps.find(Node);
    return It != NodeFrameCaps.end() ? It->second : FrameCap;
  }

  /// Parses the key = value format above.  \p Name labels diagnostics
  /// (typically the file path).  Unknown keys, out-of-range
  /// probabilities, and malformed numbers are errors.
  static Expected<FaultSpec> parse(const std::string &Text,
                                   const std::string &Name = "<fault-spec>");

  /// Renders the spec back in parseable form (non-default keys only).
  /// Round-trips: parse(str()) reproduces the spec exactly, for any
  /// spec whose probabilities survive %g formatting (six significant
  /// digits; the chaos generator only draws such values).
  std::string str() const;

  bool operator==(const FaultSpec &O) const = default;
};

} // namespace dsm::fault

#endif // DSM_FAULT_FAULTSPEC_H
