//===- fault/Injector.cpp - Deterministic fault injection -----------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "fault/Injector.h"

#include <algorithm>

#include "support/Rng.h"
#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::fault;

std::string FaultCounters::str() const {
  return formatString(
      "place denied=%llu fallback=%llu | migrate denied=%llu "
      "retries=%llu | latency spikes=%llu (+%llu cyc) | tlb retries=%llu "
      "| capacity overflows=%llu | degraded arrays=%llu",
      static_cast<unsigned long long>(PlacementsDenied),
      static_cast<unsigned long long>(PlacementFallbacks),
      static_cast<unsigned long long>(MigrationsDenied),
      static_cast<unsigned long long>(MigrationRetries),
      static_cast<unsigned long long>(LatencySpikes),
      static_cast<unsigned long long>(LatencySpikeCycles),
      static_cast<unsigned long long>(TlbFillRetries),
      static_cast<unsigned long long>(CapacityOverflows),
      static_cast<unsigned long long>(DegradedArrays));
}

double Injector::draw(uint64_t Salt, uint64_t Seq, uint64_t Key) const {
  uint64_t X = hashMix64(Spec.Seed ^ hashMix64(Salt)) ^
               hashMix64(Seq * 0x9e3779b97f4a7c15ULL + Key);
  return static_cast<double>(hashMix64(X) >> 11) * 0x1.0p-53;
}

bool Injector::scheduled(const std::vector<uint64_t> &Sorted,
                         uint64_t Seq) {
  return std::binary_search(Sorted.begin(), Sorted.end(), Seq);
}
