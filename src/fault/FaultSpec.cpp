//===- fault/FaultSpec.cpp - Fault-injection configuration ----------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultSpec.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::fault;

namespace {

std::string trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

bool parseI64(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

bool parseProb(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

bool parseIndexList(const std::string &S, std::vector<uint64_t> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    std::string Item =
        trim(S.substr(Pos, Comma == std::string::npos ? std::string::npos
                                                      : Comma - Pos));
    uint64_t V;
    if (!parseU64(Item, V) || V == 0)
      return false;
    Out.push_back(V);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  std::sort(Out.begin(), Out.end());
  return true;
}

} // namespace

Expected<FaultSpec> FaultSpec::parse(const std::string &Text,
                                     const std::string &Name) {
  FaultSpec Spec;
  Error Err;
  int LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    Pos = Nl == std::string::npos ? Text.size() + 1 : Nl + 1;
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line.resize(Hash);
    Line = std::string(trim(Line));
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos) {
      Err.addError("expected key = value", Name, LineNo);
      continue;
    }
    std::string Key(trim(Line.substr(0, Eq)));
    std::string Val(trim(Line.substr(Eq + 1)));
    bool Ok = true;
    if (Key == "seed") {
      Ok = parseU64(Val, Spec.Seed);
    } else if (Key == "place_deny_prob") {
      Ok = parseProb(Val, Spec.PlaceDenyProb);
    } else if (Key == "place_deny_at") {
      Ok = parseIndexList(Val, Spec.PlaceDenyAt);
    } else if (Key == "migrate_deny_prob") {
      Ok = parseProb(Val, Spec.MigrateDenyProb);
    } else if (Key == "migrate_deny_at") {
      Ok = parseIndexList(Val, Spec.MigrateDenyAt);
    } else if (Key == "latency_spike_prob") {
      Ok = parseProb(Val, Spec.LatencySpikeProb);
    } else if (Key == "latency_spike_cycles") {
      Ok = parseU64(Val, Spec.LatencySpikeCycles);
    } else if (Key == "tlb_fail_prob") {
      Ok = parseProb(Val, Spec.TlbFailProb);
    } else if (Key == "frame_cap") {
      Ok = parseI64(Val, Spec.FrameCap) && Spec.FrameCap >= -1;
    } else if (Key.rfind("frame_cap.", 0) == 0) {
      int64_t Node = -1, Cap = -1;
      Ok = parseI64(Key.substr(10), Node) && Node >= 0 &&
           parseI64(Val, Cap) && Cap >= -1;
      if (Ok)
        Spec.NodeFrameCaps[static_cast<int>(Node)] = Cap;
    } else if (Key == "degrade_reshaped") {
      Spec.DegradeReshaped = Val == "1" || Val == "true";
      Ok = Spec.DegradeReshaped || Val == "0" || Val == "false";
    } else if (Key == "retry_budget") {
      uint64_t V;
      Ok = parseU64(Val, V) && V <= 1000;
      if (Ok)
        Spec.RetryBudget = static_cast<unsigned>(V);
    } else if (Key == "retry_backoff_cycles") {
      Ok = parseU64(Val, Spec.RetryBackoffCycles);
    } else if (Key == "buggify_prob") {
      Ok = parseProb(Val, Spec.BuggifyProb);
    } else if (Key == "buggify_seed") {
      Ok = parseU64(Val, Spec.BuggifySeed);
    } else {
      Err.addError("unknown fault-spec key '" + Key + "'", Name, LineNo);
      continue;
    }
    if (!Ok)
      Err.addError("invalid value '" + Val + "' for key '" + Key + "'",
                   Name, LineNo);
  }
  if (Err)
    return Err;
  return Spec;
}

std::string FaultSpec::str() const {
  std::string Out;
  auto Add = [&](const std::string &S) {
    Out += S;
    Out += '\n';
  };
  auto List = [](const std::vector<uint64_t> &V) {
    std::string S;
    for (uint64_t X : V) {
      if (!S.empty())
        S += ',';
      S += std::to_string(X);
    }
    return S;
  };
  if (Seed != 1)
    Add("seed = " + std::to_string(Seed));
  if (PlaceDenyProb > 0)
    Add(formatString("place_deny_prob = %g", PlaceDenyProb));
  if (!PlaceDenyAt.empty())
    Add("place_deny_at = " + List(PlaceDenyAt));
  if (MigrateDenyProb > 0)
    Add(formatString("migrate_deny_prob = %g", MigrateDenyProb));
  if (!MigrateDenyAt.empty())
    Add("migrate_deny_at = " + List(MigrateDenyAt));
  if (LatencySpikeProb > 0)
    Add(formatString("latency_spike_prob = %g", LatencySpikeProb));
  // Printed whenever non-default (not only alongside a probability) so
  // parse(str()) round-trips field-for-field.
  if (LatencySpikeCycles != 1000)
    Add("latency_spike_cycles = " + std::to_string(LatencySpikeCycles));
  if (TlbFailProb > 0)
    Add(formatString("tlb_fail_prob = %g", TlbFailProb));
  if (FrameCap >= 0)
    Add("frame_cap = " + std::to_string(FrameCap));
  for (const auto &[Node, Cap] : NodeFrameCaps)
    Add("frame_cap." + std::to_string(Node) + " = " +
        std::to_string(Cap));
  if (DegradeReshaped)
    Add("degrade_reshaped = 1");
  if (RetryBudget != 3)
    Add("retry_budget = " + std::to_string(RetryBudget));
  if (RetryBackoffCycles != 200)
    Add("retry_backoff_cycles = " + std::to_string(RetryBackoffCycles));
  if (BuggifyProb > 0)
    Add(formatString("buggify_prob = %g", BuggifyProb));
  if (BuggifySeed != 0)
    Add("buggify_seed = " + std::to_string(BuggifySeed));
  return Out;
}
