//===- fault/Buggify.h - Seeded rare-branch amplification -------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FoundationDB-style BUGGIFY: a seeded registry that deterministically
/// forces rare/slow branches to be taken often under test (DESIGN.md
/// Section 14).  Production code plants hooks with
///
///   if (DSM_BUGGIFY(B, "phys_full", Key)) { ...take the rare branch... }
///
/// where B is a `Buggify *` that is null in ordinary runs: the macro is
/// then a single pointer test, so hooks cost nothing when chaos is off.
/// When armed (FaultSpec::BuggifyProb > 0 builds one inside the
/// Injector), each hook fires with probability BuggifyProb as a pure
/// function of (buggify seed, tag, per-tag sequence number, site key) --
/// the same mixing discipline as Injector::draw, so a firing schedule is
/// reproducible from the spec alone.
///
/// Per-tag sequence counters isolate tags from each other: a leg that
/// evaluates the host-only "strip_bail" hook a different number of times
/// (e.g. the interp engine never does) draws nothing from the sequence
/// of the sim-affecting "place_deny" hook.  Tags fall in two classes:
///
///  - sim-affecting ("place_deny", "migrate_deny", "phys_full",
///    "tlb_retry", "redistribute_partial", "redistribute_retry"): sit
///    exactly on the Injector's serial/replay decision points, so they
///    fire identically on every engine / HostThreads matrix leg.
///  - host-only ("strip_bail", "strip_peel", "batch_slow",
///    "cache_evict", "compile_wait_retry"): may fire differently per
///    leg but sit on branches that are provably unobservable in the
///    simulation.
///
/// Firings are counted per tag on the Buggify object itself (never in
/// FaultCounters, whose bit-identity across legs is an oracle field).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_FAULT_BUGGIFY_H
#define DSM_FAULT_BUGGIFY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dsm::fault {

/// Seeded per-tag firing registry.  Thread-safe (host-only hooks run on
/// pool threads); every decision is pure in (Seed, Tag, Seq, Key).
class Buggify {
public:
  Buggify(uint64_t Seed, double Prob) : Seed(Seed), Prob(Prob) {}

  uint64_t seed() const { return Seed; }
  double prob() const { return Prob; }

  /// Draws the next decision for \p Tag at site \p Key.  Use through
  /// DSM_BUGGIFY so disabled runs never reach here.
  bool fire(const char *Tag, uint64_t Key);

  /// Clears sequence numbers and firing counts; the engine calls this
  /// (via Injector::reset) at run start so every run -- and every
  /// matrix leg reusing one injector -- sees the identical schedule.
  void reset();

  /// Tags that fired at least once since the last reset, sorted.
  std::vector<std::string> firedTags() const;

  /// Firings of one tag since the last reset.
  uint64_t firedCount(const std::string &Tag) const;

  /// Total firings across all tags since the last reset.
  uint64_t totalFired() const;

private:
  struct TagState {
    uint64_t Seq = 0;   ///< Decisions drawn for this tag.
    uint64_t Fired = 0; ///< Decisions that came up "fire".
  };

  const uint64_t Seed;
  const double Prob;
  mutable std::mutex Mu;
  std::map<std::string, TagState, std::less<>> Tags;
};

} // namespace dsm::fault

/// Plants a buggify hook: false (one pointer test) when \p B is null,
/// otherwise one seeded draw for (\p Tag, \p Key).  Tag must be a
/// string literal naming the rare branch; Key disambiguates sites that
/// share a tag (a page number, a strip index -- any stable integer).
#define DSM_BUGGIFY(B, Tag, Key)                                          \
  ((B) != nullptr && (B)->fire((Tag), static_cast<uint64_t>(Key)))

#endif // DSM_FAULT_BUGGIFY_H
