//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers used by the frontend and the report printers.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SUPPORT_STRINGUTILS_H
#define DSM_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace dsm {

/// Returns \p S lower-cased (ASCII only); DSM Fortran is case-insensitive.
std::string toLower(std::string_view S);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, trimming each piece; empty pieces are kept.
std::vector<std::string> splitAndTrim(std::string_view S, char Sep);

/// True if \p S starts with \p Prefix, comparing case-insensitively.
bool startsWithNoCase(std::string_view S, std::string_view Prefix);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dsm

#endif // DSM_SUPPORT_STRINGUTILS_H
