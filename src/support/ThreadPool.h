//===- support/ThreadPool.h - Host worker-thread pool -----------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent thread pool used by the execution engine to run
/// the simulated processors of a parallel epoch on real OS threads.
/// One pool lives for the whole engine so the many short epochs of an
/// iterative benchmark do not pay thread creation each time.
///
/// The only operation is a blocking parallel-for: indices are handed
/// out through a shared atomic counter (self-balancing when cells have
/// uneven cost) and the calling thread participates, so a pool of size
/// N uses N-1 background workers.
///
/// Shutdown is explicit and deterministic: drain() waits for any
/// in-flight job to complete, then joins every background worker;
/// parallelFor calls issued at or after the drain run inline on the
/// caller (the work still completes, just serially).  The destructor
/// is drain(), so destroying a pool while another thread is mid-
/// parallelFor finishes that job before any member is torn down.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SUPPORT_THREADPOOL_H
#define DSM_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsm::support {

/// Persistent pool running blocking parallel-for jobs.
class ThreadPool {
public:
  /// \p Threads is the total parallelism including the calling thread;
  /// values <= 1 create no background workers.
  explicit ThreadPool(unsigned Threads) {
    unsigned Workers = Threads > 1 ? Threads - 1 : 0;
    Background.reserve(Workers);
    for (unsigned W = 0; W < Workers; ++W)
      Background.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() { drain(); }

  unsigned size() const {
    return static_cast<unsigned>(Background.size()) + 1;
  }

  /// Rejects new work and shuts the pool down deterministically: waits
  /// until any in-flight parallelFor has handed out and completed all
  /// of its indices, then joins every background worker.  Idempotent
  /// and safe to race with parallelFor from other threads -- a
  /// parallelFor that observes the drain runs its job inline instead.
  void drain() {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      if (ShuttingDown) {
        // Another drainer won; wait until it has finished joining so
        // every caller of drain() gets the same postcondition.
        DrainedCv.wait(Lock, [this] { return Drained; });
        return;
      }
      ShuttingDown = true;
      // No new job can be armed once ShuttingDown is set, so waiting
      // for the in-flight parallelFor call (if any) to fully unwind --
      // indices all executed, workers parked, caller past its member
      // accesses -- cannot miss work.
      JobDone.wait(Lock, [this] {
        return Pending.load(std::memory_order_acquire) == 0 &&
               InDrain == 0 && ActiveCalls == 0;
      });
    }
    JobReady.notify_all();
    for (std::thread &T : Background)
      T.join();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Drained = true;
    }
    DrainedCv.notify_all();
  }

  /// Runs Fn(0) .. Fn(N-1) across the pool and the calling thread;
  /// returns when every index has completed.  Not reentrant.
  void parallelFor(int64_t N, std::function<void(int64_t)> Fn) {
    if (N <= 0)
      return;
    if (Background.empty()) {
      for (int64_t I = 0; I < N; ++I)
        Fn(I);
      return;
    }
    {
      // Workers from the previous job may still be unwinding out of
      // runJob(); wait until every one is parked before rearming the
      // counters they read.  A concurrent drain() wins the race: once
      // ShuttingDown is set the workers are (being) joined, so the job
      // runs inline on this thread instead.
      std::unique_lock<std::mutex> Lock(Mu);
      JobDone.wait(Lock,
                   [this] { return InDrain == 0 || ShuttingDown; });
      if (ShuttingDown) {
        Lock.unlock();
        for (int64_t I = 0; I < N; ++I)
          Fn(I);
        return;
      }
      ++ActiveCalls;
      Job = std::move(Fn);
      JobEnd = N;
      Next.store(0, std::memory_order_relaxed);
      Pending.store(N, std::memory_order_relaxed);
      ++JobGeneration;
    }
    JobReady.notify_all();
    runJob();
    std::unique_lock<std::mutex> Lock(Mu);
    JobDone.wait(Lock, [this] {
      return Pending.load(std::memory_order_acquire) == 0;
    });
    // Tell a concurrent drain() this call is past its last member
    // access (the unlock below); destruction is safe once ActiveCalls
    // is zero again.
    --ActiveCalls;
    JobDone.notify_all();
  }

private:
  void runJob() {
    for (;;) {
      int64_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= JobEnd)
        return;
      Job(I);
      if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(Mu);
        JobDone.notify_all();
      }
    }
  }

  void workerLoop() {
    uint64_t SeenGeneration = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> Lock(Mu);
        JobReady.wait(Lock, [&] {
          return ShuttingDown || JobGeneration != SeenGeneration;
        });
        if (ShuttingDown)
          return;
        SeenGeneration = JobGeneration;
        ++InDrain;
      }
      runJob();
      {
        std::lock_guard<std::mutex> Lock(Mu);
        --InDrain;
      }
      JobDone.notify_all();
    }
  }

  std::vector<std::thread> Background;
  std::mutex Mu;
  std::condition_variable JobReady;
  std::condition_variable JobDone;
  std::condition_variable DrainedCv;
  std::function<void(int64_t)> Job;
  int64_t JobEnd = 0;
  uint64_t JobGeneration = 0;
  int InDrain = 0;
  int ActiveCalls = 0;
  bool ShuttingDown = false;
  bool Drained = false;
  std::atomic<int64_t> Next{0};
  std::atomic<int64_t> Pending{0};
};

} // namespace dsm::support

#endif // DSM_SUPPORT_THREADPOOL_H
