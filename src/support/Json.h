//===- support/Json.h - Minimal JSON parsing helpers ------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON reader for tool inputs (batch manifests,
/// configuration snippets, dsm_serve wire frames) plus the
/// string-escaping helper the JSONL writers share.  Parsing is strict
/// (trailing garbage is an error) and hardened against hostile input:
/// unterminated strings, truncated escapes, and containers nested
/// deeper than a fixed bound all produce a proper Error carrying the
/// line number and byte offset -- never an abort or unbounded
/// recursion.  The serve tests feed the same malformed frames to this
/// parser and to a live server (tests/support/JsonRobustnessTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SUPPORT_JSON_H
#define DSM_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/Error.h"

namespace dsm::json {

/// One parsed JSON value.  Numbers are kept as double plus an exact
/// int64 when the literal was integral.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool(bool Default = false) const {
    return isBool() ? B : Default;
  }
  double asNumber(double Default = 0.0) const {
    return isNumber() ? Num : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    return isNumber() ? Int : Default;
  }
  const std::string &asString() const { return Str; }

  const std::vector<Value> &array() const { return Arr; }

  /// Object member lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const;
  /// Object member access that never fails: absent keys yield a shared
  /// Null value, so chained lookups read cleanly.
  const Value &operator[](const std::string &Key) const;

  /// Members in source order (objects keep their manifest order so job
  /// lists stay stable).
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

private:
  friend class Parser;
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  int64_t Int = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses one JSON document; \p File names the source in diagnostics.
Expected<Value> parse(std::string_view Text,
                      const std::string &File = "<json>");

/// Escapes \p S for embedding in a JSON string literal (no quotes
/// added).
std::string escape(std::string_view S);

} // namespace dsm::json

#endif // DSM_SUPPORT_JSON_H
