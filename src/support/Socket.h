//===- support/Socket.h - TCP sockets + length-prefixed frames --*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over POSIX TCP sockets plus the length-prefixed
/// framing the dsm_serve wire protocol uses: every message is a 4-byte
/// big-endian payload length followed by that many bytes of JSON.
///
/// Everything returns Expected/Error instead of throwing or aborting,
/// and every read loop survives the conditions a public network
/// surface sees: partial reads (the kernel hands back one byte at a
/// time), EINTR, peers that vanish mid-frame, and length prefixes that
/// lie (oversize or zero).  An oversize or malformed prefix is
/// reported as FrameError::TooLarge / Malformed so the server can
/// answer with a protocol error before closing, rather than dying.
///
/// SIGPIPE is disabled per-send (MSG_NOSIGNAL), so writing to a
/// half-closed connection fails with an Error, never a signal.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SUPPORT_SOCKET_H
#define DSM_SUPPORT_SOCKET_H

#include <cstdint>
#include <string>

#include "support/Error.h"

namespace dsm::support {

/// Default cap on one frame's payload (4 MiB): large enough for any
/// source bundle the tools ship, small enough that a hostile length
/// prefix cannot make the peer allocate unbounded memory.
inline constexpr uint32_t DefaultMaxFrameBytes = 4u << 20;

/// Why readFrame failed, for callers that answer differently per
/// condition (the server sends bad_request for TooLarge/Malformed but
/// just drops Closed connections).
enum class FrameStatus {
  Ok,        ///< A whole frame arrived.
  Closed,    ///< Peer closed cleanly at a frame boundary.
  Truncated, ///< Peer vanished mid-frame (half-open, reset, timeout).
  TooLarge,  ///< Length prefix exceeds the frame cap.
  Malformed, ///< Length prefix is zero.
  IoError,   ///< read()/write() failed hard.
};

const char *frameStatusName(FrameStatus S);

/// One connected TCP socket (client side or an accepted server
/// connection).  Move-only RAII over the fd.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;
  ~Socket() { close(); }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Connects to Host:Port with a bounded wait.
  static Expected<Socket> connectTo(const std::string &Host, int Port,
                                    int TimeoutMs = 5000);

  /// Sends the whole buffer, riding out partial writes and EINTR.
  Error writeAll(const void *Data, size_t Len);

  /// Reads exactly \p Len bytes.  FrameStatus::Ok on success; Closed if
  /// the peer ended the stream before the first byte, Truncated if it
  /// ended mid-buffer or the per-read timeout expired.
  FrameStatus readExact(void *Data, size_t Len);

  /// Writes one length-prefixed frame.
  Error writeFrame(const std::string &Payload);

  /// Reads one length-prefixed frame into \p Payload.  Never allocates
  /// more than \p MaxBytes.
  FrameStatus readFrame(std::string &Payload,
                        uint32_t MaxBytes = DefaultMaxFrameBytes);

  /// Bounds every subsequent blocking read; <= 0 restores "wait
  /// forever".  A timeout mid-frame surfaces as Truncated.
  void setReadTimeout(int Ms);

  /// Bounds every subsequent blocking write; <= 0 restores "wait
  /// forever".  The server sets this so a peer that requests work but
  /// never reads responses cannot wedge a worker in send().
  void setWriteTimeout(int Ms);

  /// Half-closes the write side (the test suite uses this to simulate
  /// half-open peers).
  void shutdownWrite();

  /// Shuts down both directions without closing the fd: a reader
  /// blocked in recv() on another thread wakes with end-of-stream.
  /// The server's drain uses this to unblock idle connection readers;
  /// the fd itself stays owned (and valid) until the destructor.
  void shutdownBoth();

  void close();

private:
  int Fd = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (the service is a local /
/// lab daemon, not an internet listener).
class Listener {
public:
  Listener() = default;
  Listener(Listener &&O) noexcept : Fd(O.Fd), BoundPort(O.BoundPort) {
    O.Fd = -1;
  }
  Listener &operator=(Listener &&O) noexcept {
    if (this != &O) {
      close();
      Fd = O.Fd;
      BoundPort = O.BoundPort;
      O.Fd = -1;
    }
    return *this;
  }
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;
  ~Listener() { close(); }

  /// Binds and listens on \p Port; 0 picks an ephemeral port (the
  /// bound port is then available from port()).
  static Expected<Listener> listenOn(int Port, int Backlog = 64);

  bool valid() const { return Fd >= 0; }
  int port() const { return BoundPort; }

  /// Waits up to \p TimeoutMs for a connection.  Returns an invalid
  /// Socket on timeout (not an error), so an accept loop can poll a
  /// shutdown flag between waits.
  Expected<Socket> acceptOnce(int TimeoutMs);

  /// Unblocks any acceptOnce in progress and stops accepting.
  void close();

private:
  int Fd = -1;
  int BoundPort = 0;
};

} // namespace dsm::support

#endif // DSM_SUPPORT_SOCKET_H
