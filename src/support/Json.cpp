//===- support/Json.cpp - Minimal JSON parsing helpers ---------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::json;

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

const Value &Value::operator[](const std::string &Key) const {
  static const Value Null;
  const Value *V = find(Key);
  return V ? *V : Null;
}

namespace dsm::json {

/// Containers may nest at most this deep.  The parser recurses once
/// per nesting level, so without a bound a frame of a few hundred
/// kilobytes of '[' characters overflows the stack; with it, the
/// deepest possible recursion is small and fixed and hostile input
/// gets a proper diagnostic instead.  Far deeper than any manifest or
/// wire request the tools produce (those nest < 10 levels).
static constexpr int MaxNestingDepth = 96;

class Parser {
public:
  Parser(std::string_view Text, const std::string &File)
      : Text(Text), File(File) {}

  Expected<Value> run() {
    Value V;
    if (!parseValue(V))
      return std::move(Err);
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after JSON document");
      return std::move(Err);
    }
    return V;
  }

private:
  std::string_view Text;
  const std::string &File;
  size_t Pos = 0;
  int Line = 1;
  int Depth = 0;
  Error Err;

  /// Every parse diagnostic carries the byte offset where the parser
  /// stopped: network frames are one long line, so the line number
  /// alone cannot locate the problem.
  void fail(const std::string &Message) {
    if (!Err)
      Err.addError(
          formatString("%s (at byte %zu)", Message.c_str(), Pos), File,
          Line);
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n')
        ++Line;
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C, const char *Where) {
    if (consume(C))
      return true;
    fail(formatString("expected '%c' in %s", C, Where));
    return false;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
    case 'f':
      return parseKeyword(C == 't' ? "true" : "false", Out);
    case 'n':
      return parseKeyword("null", Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseKeyword(std::string_view KW, Value &Out) {
    if (Text.substr(Pos, KW.size()) != KW) {
      fail("invalid literal");
      return false;
    }
    Pos += KW.size();
    if (KW == "true" || KW == "false") {
      Out.K = Value::Kind::Bool;
      Out.B = KW == "true";
    } else {
      Out.K = Value::Kind::Null;
    }
    return true;
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool Integral = true;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '-' ||
                 C == '+') {
        if (C == '.' || C == 'e' || C == 'E')
          Integral = false;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start) {
      fail("invalid JSON value");
      return false;
    }
    std::string Lit(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    Out.K = Value::Kind::Number;
    Out.Num = std::strtod(Lit.c_str(), &End);
    if (!End || *End != '\0') {
      fail("malformed number '" + Lit + "'");
      return false;
    }
    Out.Int = Integral ? std::strtoll(Lit.c_str(), nullptr, 10)
                       : static_cast<int64_t>(Out.Num);
    return true;
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (!expect('"', "string"))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\n') {
        fail("unterminated string");
        return false;
      }
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return false;
        }
        std::string Hex(Text.substr(Pos, 4));
        Pos += 4;
        unsigned Code =
            static_cast<unsigned>(std::strtoul(Hex.c_str(), nullptr, 16));
        // UTF-8 encode the BMP code point (surrogate pairs are beyond
        // what tool manifests need; they decode as two 3-byte units).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        fail(formatString("invalid escape '\\%c'", E));
        return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool enter() {
    if (++Depth > MaxNestingDepth) {
      fail(formatString("containers nested deeper than %d levels",
                        MaxNestingDepth));
      return false;
    }
    return true;
  }

  bool parseArray(Value &Out) {
    expect('[', "array");
    if (!enter())
      return false;
    Out.K = Value::Kind::Array;
    skipWs();
    if (consume(']')) {
      --Depth;
      return true;
    }
    for (;;) {
      Value Elem;
      if (!parseValue(Elem))
        return false;
      Out.Arr.push_back(std::move(Elem));
      if (consume(']')) {
        --Depth;
        return true;
      }
      if (!expect(',', "array"))
        return false;
    }
  }

  bool parseObject(Value &Out) {
    expect('{', "object");
    if (!enter())
      return false;
    Out.K = Value::Kind::Object;
    skipWs();
    if (consume('}')) {
      --Depth;
      return true;
    }
    for (;;) {
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!expect(':', "object"))
        return false;
      Value Member;
      if (!parseValue(Member))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Member));
      if (consume('}')) {
        --Depth;
        return true;
      }
      if (!expect(',', "object"))
        return false;
    }
  }
};

} // namespace dsm::json

Expected<Value> json::parse(std::string_view Text,
                            const std::string &File) {
  return Parser(Text, File).run();
}

std::string json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(C);
    }
  }
  return Out;
}
