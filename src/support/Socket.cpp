//===- support/Socket.cpp - TCP sockets + length-prefixed frames -----------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dsm;
using namespace dsm::support;

const char *support::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Closed:
    return "closed";
  case FrameStatus::Truncated:
    return "truncated";
  case FrameStatus::TooLarge:
    return "too-large";
  case FrameStatus::Malformed:
    return "malformed";
  case FrameStatus::IoError:
    return "io-error";
  }
  return "?";
}

static Error errnoError(const std::string &What) {
  return Error::make(What + ": " + std::strerror(errno));
}

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdownWrite() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Socket::setReadTimeout(int Ms) {
  if (Fd < 0)
    return;
  struct timeval Tv = {};
  if (Ms > 0) {
    Tv.tv_sec = Ms / 1000;
    Tv.tv_usec = (Ms % 1000) * 1000;
  }
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

void Socket::setWriteTimeout(int Ms) {
  if (Fd < 0)
    return;
  struct timeval Tv = {};
  if (Ms > 0) {
    Tv.tv_sec = Ms / 1000;
    Tv.tv_usec = (Ms % 1000) * 1000;
  }
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

Expected<Socket> Socket::connectTo(const std::string &Host, int Port,
                                   int TimeoutMs) {
  if (Port <= 0 || Port > 65535)
    return Error::make("connect: bad port " + std::to_string(Port));
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoError("socket");
  Socket S(Fd);

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return Error::make("connect: bad address '" + Host +
                       "' (numeric IPv4 only)");

  // Non-blocking connect so a dead host costs TimeoutMs, not the
  // kernel's multi-minute SYN retry budget.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr));
  if (Rc != 0 && errno != EINPROGRESS)
    return errnoError("connect to " + Host + ":" + std::to_string(Port));
  if (Rc != 0) {
    struct pollfd Pfd = {Fd, POLLOUT, 0};
    int Pr;
    do {
      Pr = ::poll(&Pfd, 1, TimeoutMs);
    } while (Pr < 0 && errno == EINTR);
    if (Pr == 0)
      return Error::make("connect to " + Host + ":" +
                         std::to_string(Port) + ": timed out");
    if (Pr < 0)
      return errnoError("poll");
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0)
      return Error::make("connect to " + Host + ":" +
                         std::to_string(Port) + ": " +
                         std::strerror(SoErr));
  }
  ::fcntl(Fd, F_SETFL, Flags);

  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return std::move(S);
}

Error Socket::writeAll(const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoError("send");
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return Error::success();
}

FrameStatus Socket::readExact(void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        // Read timeout: the peer is half-open or glacial; a partial
        // frame is as unusable as a torn one.
        return Got == 0 ? FrameStatus::Closed : FrameStatus::Truncated;
      return FrameStatus::IoError;
    }
    if (N == 0)
      return Got == 0 ? FrameStatus::Closed : FrameStatus::Truncated;
    Got += static_cast<size_t>(N);
  }
  return FrameStatus::Ok;
}

Error Socket::writeFrame(const std::string &Payload) {
  if (Payload.size() > 0xffffffffu)
    return Error::make("frame payload exceeds 4 GiB");
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Hdr[4] = {static_cast<unsigned char>(Len >> 24),
                          static_cast<unsigned char>(Len >> 16),
                          static_cast<unsigned char>(Len >> 8),
                          static_cast<unsigned char>(Len)};
  if (Error E = writeAll(Hdr, sizeof(Hdr)))
    return E;
  return writeAll(Payload.data(), Payload.size());
}

FrameStatus Socket::readFrame(std::string &Payload, uint32_t MaxBytes) {
  unsigned char Hdr[4];
  FrameStatus S = readExact(Hdr, sizeof(Hdr));
  if (S != FrameStatus::Ok)
    return S;
  uint32_t Len = (static_cast<uint32_t>(Hdr[0]) << 24) |
                 (static_cast<uint32_t>(Hdr[1]) << 16) |
                 (static_cast<uint32_t>(Hdr[2]) << 8) |
                 static_cast<uint32_t>(Hdr[3]);
  if (Len == 0)
    return FrameStatus::Malformed;
  if (Len > MaxBytes)
    // Do NOT allocate or drain Len bytes: the prefix may be lying.
    return FrameStatus::TooLarge;
  Payload.resize(Len);
  S = readExact(Payload.data(), Len);
  if (S == FrameStatus::Closed)
    // Header arrived but the body did not: that is a torn frame.
    return FrameStatus::Truncated;
  return S;
}

Expected<Listener> Listener::listenOn(int Port, int Backlog) {
  if (Port < 0 || Port > 65535)
    return Error::make("listen: bad port " + std::to_string(Port));
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoError("socket");
  Listener L;
  L.Fd = Fd;

  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return errnoError("bind to port " + std::to_string(Port));
  if (::listen(Fd, Backlog) != 0)
    return errnoError("listen");

  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return errnoError("getsockname");
  L.BoundPort = ntohs(Addr.sin_port);
  return std::move(L);
}

Expected<Socket> Listener::acceptOnce(int TimeoutMs) {
  if (Fd < 0)
    return Error::make("accept on closed listener");
  struct pollfd Pfd = {Fd, POLLIN, 0};
  int Pr;
  do {
    Pr = ::poll(&Pfd, 1, TimeoutMs);
  } while (Pr < 0 && errno == EINTR);
  if (Pr == 0)
    return Socket(); // timeout: caller re-checks its shutdown flag
  if (Pr < 0)
    return errnoError("poll");
  int Client = ::accept(Fd, nullptr, nullptr);
  if (Client < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK)
      return Socket(); // transient; treat like a timeout tick
    return errnoError("accept");
  }
  int One = 1;
  ::setsockopt(Client, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Socket(Client);
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
