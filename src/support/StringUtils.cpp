//===- support/StringUtils.cpp - Small string helpers ---------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace dsm;

std::string dsm::toLower(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(C))));
  return Out;
}

std::string_view dsm::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string> dsm::splitAndTrim(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.emplace_back(trim(S.substr(Start, I - Start)));
      Start = I + 1;
    }
  }
  return Out;
}

bool dsm::startsWithNoCase(std::string_view S, std::string_view Prefix) {
  if (S.size() < Prefix.size())
    return false;
  for (size_t I = 0; I < Prefix.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(S[I])) !=
        std::tolower(static_cast<unsigned char>(Prefix[I])))
      return false;
  return true;
}

std::string dsm::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out(Len > 0 ? static_cast<size_t>(Len) : 0, '\0');
  if (Len > 0)
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}
