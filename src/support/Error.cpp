//===- support/Error.cpp - Lightweight error handling --------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>

using namespace dsm;

std::string Diagnostic::str() const {
  std::string Out;
  if (!File.empty()) {
    Out += File;
    Out += ':';
    if (Line > 0) {
      Out += std::to_string(Line);
      Out += ':';
    }
    Out += ' ';
  }
  switch (Kind) {
  case DiagKind::Error:
    Out += "error: ";
    break;
  case DiagKind::Warning:
    Out += "warning: ";
    break;
  case DiagKind::Note:
    Out += "note: ";
    break;
  }
  Out += Message;
  return Out;
}

std::string Error::str() const {
  std::string Out;
  for (const auto &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

void dsm::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "dsm fatal error: %s\n", Message.c_str());
  std::abort();
}
