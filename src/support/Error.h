//===- support/Error.h - Lightweight error handling ------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project: a reproduction of "Data Distribution
// Support on Distributed Shared Memory Multiprocessors" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free error propagation primitives in the spirit of
/// llvm::Error / llvm::Expected.  An Error carries a list of diagnostics
/// (so the compiler can report several problems at once); an Expected<T>
/// carries either a value or an Error.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SUPPORT_ERROR_H
#define DSM_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dsm {

/// Severity of a single diagnostic message.
enum class DiagKind { Error, Warning, Note };

/// One diagnostic: a severity, an optional source location, and a message.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  std::string File;
  int Line = 0;
  std::string Message;

  /// Renders the diagnostic in "file:line: error: message" form.
  std::string str() const;
};

/// A (possibly empty) list of diagnostics.  An Error that holds no
/// error-severity diagnostics converts to false, mirroring the
/// llvm::Error convention (true means failure).
class Error {
public:
  Error() = default;

  /// Creates a failure value carrying a single error message.
  static Error make(std::string Message, std::string File = "",
                    int Line = 0) {
    Error E;
    E.Diags.push_back(
        Diagnostic{DiagKind::Error, std::move(File), Line,
                   std::move(Message)});
    return E;
  }

  static Error success() { return Error(); }

  void addError(std::string Message, std::string File = "", int Line = 0) {
    Diags.push_back(Diagnostic{DiagKind::Error, std::move(File), Line,
                               std::move(Message)});
  }

  void addWarning(std::string Message, std::string File = "", int Line = 0) {
    Diags.push_back(Diagnostic{DiagKind::Warning, std::move(File), Line,
                               std::move(Message)});
  }

  void addNote(std::string Message, std::string File = "", int Line = 0) {
    Diags.push_back(Diagnostic{DiagKind::Note, std::move(File), Line,
                               std::move(Message)});
  }

  /// Appends all diagnostics from \p Other.
  void take(Error Other) {
    for (auto &D : Other.Diags)
      Diags.push_back(std::move(D));
  }

  /// True if any error-severity diagnostic is present.
  explicit operator bool() const {
    for (const auto &D : Diags)
      if (D.Kind == DiagKind::Error)
        return true;
    return false;
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
};

/// Either a value of type T or an Error.  Success is tested with the
/// boolean conversion (true means a value is present).
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Error E) : Err(std::move(E)) {
    assert(Err && "Expected constructed from a success Error");
  }

  explicit operator bool() const { return Value.has_value(); }

  T &get() {
    assert(Value && "Expected has no value");
    return *Value;
  }
  const T &get() const {
    assert(Value && "Expected has no value");
    return *Value;
  }
  T &operator*() { return get(); }
  T *operator->() { return &get(); }

  Error takeError() {
    assert(!Value && "Expected holds a value, not an error");
    return std::move(Err);
  }
  const Error &error() const {
    assert(!Value && "Expected holds a value, not an error");
    return Err;
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Aborts with \p Message; used for violated internal invariants on paths
/// where assert may be compiled out.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace dsm

#endif // DSM_SUPPORT_ERROR_H
