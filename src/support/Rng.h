//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64 generator.  Used for deterministic frame-assignment
/// hashing in the NUMA simulator and for property-test input generation;
/// std::mt19937 is avoided so results are identical across libstdc++
/// versions.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SUPPORT_RNG_H
#define DSM_SUPPORT_RNG_H

#include <cstdint>

namespace dsm {

/// SplitMix64: tiny, fast, and statistically adequate for simulation use.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound); Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

/// Stateless 64-bit mix function; used to hash page numbers into frame
/// colors deterministically.
inline uint64_t hashMix64(uint64_t X) {
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace dsm

#endif // DSM_SUPPORT_RNG_H
