//===- xform/ExprBuild.h - IR expression builders ---------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Terse builders for the integer index expressions the transformation
/// passes generate.  All operate on i64 expressions.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_XFORM_EXPRBUILD_H
#define DSM_XFORM_EXPRBUILD_H

#include "ir/Ir.h"

namespace dsm::xform {

inline ir::ExprPtr litE(int64_t V) { return ir::intLit(V); }
inline ir::ExprPtr useE(ir::ScalarSymbol *S) { return ir::scalarUse(S); }

inline ir::ExprPtr addE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::Add, std::move(L), std::move(R));
}
inline ir::ExprPtr subE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::Sub, std::move(L), std::move(R));
}
inline ir::ExprPtr mulE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::Mul, std::move(L), std::move(R));
}
inline ir::ExprPtr divE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::IDiv, std::move(L), std::move(R));
}
inline ir::ExprPtr modE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::IMod, std::move(L), std::move(R));
}
inline ir::ExprPtr minE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::Min, std::move(L), std::move(R));
}
inline ir::ExprPtr maxE(ir::ExprPtr L, ir::ExprPtr R) {
  return ir::bin(ir::BinOp::Max, std::move(L), std::move(R));
}

/// Bias that turns C truncating division into flooring division for
/// any |X| below Big*D; generated index magnitudes stay far below it.
inline constexpr int64_t FloorDivBias = int64_t(1) << 30;

/// floor(X / D) for positive D, exact for negative X too: computed as
/// (X + Big*D) / D - Big so the truncating IDiv sees a positive
/// numerator.
inline ir::ExprPtr floorDivE(ir::ExprPtr X, ir::ExprPtr D) {
  int64_t DV;
  if (ir::constEvalInt(*D, DV) && DV == 1)
    return X;
  ir::ExprPtr Biased =
      addE(std::move(X), mulE(litE(FloorDivBias), ir::cloneExpr(*D)));
  return subE(divE(std::move(Biased), std::move(D)),
              litE(FloorDivBias));
}

/// ceil(X / D) for positive D, exact for all X: floor((X + D - 1) / D).
inline ir::ExprPtr ceilDivE(ir::ExprPtr X, ir::ExprPtr D) {
  int64_t DV;
  if (ir::constEvalInt(*D, DV) && DV == 1)
    return X;
  ir::ExprPtr Dm1 = subE(ir::cloneExpr(*D), litE(1));
  return floorDivE(addE(std::move(X), std::move(Dm1)), std::move(D));
}

/// Adds the constant \p C, folding the no-op case.
inline ir::ExprPtr addConstE(ir::ExprPtr X, int64_t C) {
  if (C == 0)
    return X;
  if (C > 0)
    return addE(std::move(X), litE(C));
  return subE(std::move(X), litE(-C));
}

/// Multiplies by the constant \p C, folding the no-op case.
inline ir::ExprPtr mulConstE(ir::ExprPtr X, int64_t C) {
  if (C == 1)
    return X;
  return mulE(litE(C), std::move(X));
}

inline ir::ExprPtr queryE(ir::DistQueryKind K, ir::ArraySymbol *A,
                          unsigned Dim) {
  return ir::distQuery(K, A, Dim);
}

} // namespace dsm::xform

#endif // DSM_XFORM_EXPRBUILD_H
