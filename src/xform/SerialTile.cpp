//===- xform/SerialTile.cpp - Processor-tiling of serial loops -------------===//
//
// Part of the dsm-dist-repro project.
//
// Section 7.1: "besides parallel loops with data affinity, we apply
// [tiling and peeling] to other loops that reference reshaped arrays,
// such as serial loops and parallel loops without user-declared
// affinity."  A serial loop whose body references a block-reshaped
// dimension linearly in the loop variable gains an enclosing
// processor-tile loop with portion-restricted bounds.  For block
// distributions the tiles enumerate iterations in their original order,
// so the transformation is always legal; cyclic tilings would reorder
// iterations and are therefore not applied to serial loops (the
// dependence constraint the paper notes).
//
//===----------------------------------------------------------------------===//

#include <functional>
#include <map>
#include <unordered_set>

#include "xform/ExprBuild.h"
#include "xform/Xform.h"

using namespace dsm;
using namespace dsm::xform;
using namespace dsm::ir;

namespace {

struct Candidate {
  ArraySymbol *Array = nullptr;
  unsigned Dim = 0;
  int64_t Scale = 1;
  int64_t Offset = 0;
  unsigned RefCount = 0;
};

/// Counts block-reshaped references indexed linearly by \p Var, keyed
/// by (array, dim, scale, offset).
class CandidateScan {
public:
  CandidateScan(const ScalarSymbol *Var) : Var(Var) {}

  void scanBlock(const Block &B) {
    for (const StmtPtr &S : B) {
      scanExprIfAny(S->Lhs);
      scanExprIfAny(S->Rhs);
      scanExprIfAny(S->Cond);
      scanExprIfAny(S->Lb);
      scanExprIfAny(S->Ub);
      for (const ExprPtr &A : S->Args)
        scanExprIfAny(A);
      scanBlock(S->Body);
      scanBlock(S->Then);
      scanBlock(S->Else);
    }
  }

  /// The most-referenced candidate, if any.
  bool best(Candidate &Out) const {
    const Candidate *Best = nullptr;
    for (const auto &[Key, C] : Cands)
      if (!Best || C.RefCount > Best->RefCount)
        Best = &C;
    if (!Best)
      return false;
    Out = *Best;
    return true;
  }

private:
  void scanExprIfAny(const ExprPtr &E) {
    if (E)
      scanExpr(*E);
  }
  void scanExpr(const Expr &E) {
    for (const ExprPtr &Op : E.Ops)
      scanExpr(*Op);
    if (E.Kind != ExprKind::ArrayElem || E.Ops.empty() ||
        !E.Array->isReshaped())
      return;
    for (unsigned D = 0; D < E.Ops.size(); ++D) {
      if (E.Array->Dist.Dims[D].Kind != dist::DistKind::Block)
        continue;
      int64_t S, C;
      if (!extractLinear(*E.Ops[D], Var, S, C) || S <= 0)
        continue;
      // Keyed by name, not symbol address: iteration order feeds the
      // RefCount tie-break in best(), and pointer order would make the
      // chosen tile (and thus the lowered access sequence) vary from
      // compile to compile.
      auto Key = std::make_tuple(E.Array->Name, D, S);
      Candidate &Cand = Cands[Key];
      if (Cand.RefCount == 0) {
        Cand.Array = E.Array;
        Cand.Dim = D;
        Cand.Scale = S;
        Cand.Offset = C; // Representative offset; peeling covers the
                         // spread between references.
      }
      ++Cand.RefCount;
    }
  }

  const ScalarSymbol *Var;
  std::map<std::tuple<std::string, unsigned, int64_t>, Candidate>
      Cands;
};

//===----------------------------------------------------------------------===//
// Loop skewing (paper Section 7.1, second extension)
//===----------------------------------------------------------------------===//

/// Matches \p E against Scale*Var + R where R is a (possibly symbolic)
/// remainder not mentioning Var.  On success *Rem receives a clone of R
/// (nullptr for a zero remainder).  Multiplication requires one side to
/// be Var-free.
bool extractLinearExpr(const Expr &E, const ScalarSymbol *Var,
                       int64_t &Scale, ExprPtr *Rem) {
  switch (E.Kind) {
  case ExprKind::ScalarUse:
    if (E.Scalar == Var) {
      Scale = 1;
      *Rem = nullptr;
      return true;
    }
    Scale = 0;
    *Rem = cloneExpr(E);
    return true;
  case ExprKind::IntLit:
    Scale = 0;
    *Rem = E.IntVal == 0 ? nullptr : cloneExpr(E);
    return true;
  case ExprKind::Bin: {
    int64_t Ls, Rs;
    ExprPtr Lr, Rr;
    if (E.Op == BinOp::Add || E.Op == BinOp::Sub) {
      if (!extractLinearExpr(*E.Ops[0], Var, Ls, &Lr) ||
          !extractLinearExpr(*E.Ops[1], Var, Rs, &Rr))
        return false;
      Scale = E.Op == BinOp::Add ? Ls + Rs : Ls - Rs;
      if (!Rr) {
        *Rem = std::move(Lr);
      } else if (!Lr) {
        *Rem = E.Op == BinOp::Add
                   ? std::move(Rr)
                   : neg(std::move(Rr));
      } else {
        *Rem = bin(E.Op, std::move(Lr), std::move(Rr));
      }
      return true;
    }
    if (E.Op == BinOp::Mul) {
      // One side must be Var-free AND a literal for the scale to stay
      // compile-time known.
      int64_t Lit;
      if (constEvalInt(*E.Ops[0], Lit)) {
        if (!extractLinearExpr(*E.Ops[1], Var, Ls, &Lr))
          return false;
        Scale = Lit * Ls;
        *Rem = Lr ? mulE(litE(Lit), std::move(Lr)) : nullptr;
        return true;
      }
      if (constEvalInt(*E.Ops[1], Lit)) {
        if (!extractLinearExpr(*E.Ops[0], Var, Ls, &Lr))
          return false;
        Scale = Lit * Ls;
        *Rem = Lr ? mulE(litE(Lit), std::move(Lr)) : nullptr;
        return true;
      }
      // Var-free product (e.g. c*k with symbolic k).
      int64_t S0, S1;
      ExprPtr R0, R1;
      if (extractLinearExpr(*E.Ops[0], Var, S0, &R0) &&
          extractLinearExpr(*E.Ops[1], Var, S1, &R1) && S0 == 0 &&
          S1 == 0) {
        Scale = 0;
        *Rem = cloneExpr(E);
        return true;
      }
      return false;
    }
    return false;
  }
  case ExprKind::Neg: {
    int64_t S;
    ExprPtr R;
    if (!extractLinearExpr(*E.Ops[0], Var, S, &R))
      return false;
    Scale = -S;
    *Rem = R ? neg(std::move(R)) : nullptr;
    return true;
  }
  default:
    return false;
  }
}

class SerialTiler {
public:
  SerialTiler(Procedure &P) : Proc(P) {}

  void run() {
    Block NewBody;
    processBlock(Proc.Body, NewBody);
    Proc.Body = std::move(NewBody);
  }

private:
  Procedure &Proc;

  void processBlock(Block &B, Block &Out) {
    for (StmtPtr &S : B)
      processStmt(S, Out);
  }

  void processStmt(StmtPtr &S, Block &Out) {
    // Recurse first: inner loops tile independently (block tiling is
    // order-preserving, so nesting poses no legality issue).
    {
      Block NewBody;
      processBlock(S->Body, NewBody);
      S->Body = std::move(NewBody);
      Block NewThen;
      processBlock(S->Then, NewThen);
      S->Then = std::move(NewThen);
      Block NewElse;
      processBlock(S->Else, NewElse);
      S->Else = std::move(NewElse);
    }
    if (S->Kind != StmtKind::Do || !S->Tiles.empty() || S->IsProcTile) {
      Out.push_back(std::move(S));
      return;
    }
    int64_t StepLit = 0;
    if (!constEvalInt(*S->Step, StepLit) || StepLit != 1) {
      Out.push_back(std::move(S));
      return;
    }
    // Section 7.1: skew loops whose reshaped subscripts have the form
    // i + <loop-invariant expr>, converting them to plain A(i') so the
    // tiling below applies.
    skewLoop(*S, Out);
    CandidateScan Scan(S->IndVar);
    Scan.scanBlock(S->Body);
    Candidate C;
    if (!Scan.best(C)) {
      Out.push_back(std::move(S));
      return;
    }
    tileLoop(S, C, Out);
  }

  /// Collects scalars assigned anywhere in \p B.
  static void collectAssigned(
      const Block &B, std::unordered_set<const ScalarSymbol *> &Set) {
    for (const StmtPtr &St : B) {
      if (St->Kind == StmtKind::Assign &&
          St->Lhs->Kind == ExprKind::ScalarUse)
        Set.insert(St->Lhs->Scalar);
      if (St->IndVar)
        Set.insert(St->IndVar);
      collectAssigned(St->Body, Set);
      collectAssigned(St->Then, Set);
      collectAssigned(St->Else, Set);
    }
  }

  static bool mentionsAny(
      const Expr &E, const std::unordered_set<const ScalarSymbol *> &Set) {
    if (E.Kind == ExprKind::ScalarUse && Set.count(E.Scalar))
      return true;
    for (const ExprPtr &Op : E.Ops)
      if (mentionsAny(*Op, Set))
        return true;
    return false;
  }

  /// Finds the most common loop-invariant remainder R over reshaped
  /// block-dim subscripts of the form IndVar + R, and skews the loop by
  /// it: i' = i + R runs over shifted bounds, the original variable is
  /// recomputed at the body top, and matching subscripts become plain
  /// i' (enabling tiling).  Emits "skew = R" into \p Out.
  void skewLoop(Stmt &Loop, Block &Out) {
    std::unordered_set<const ScalarSymbol *> Assigned;
    collectAssigned(Loop.Body, Assigned);
    Assigned.insert(Loop.IndVar);

    // Vote for the remainder (by printed form).
    std::map<std::string, std::pair<ExprPtr, unsigned>> Votes;
    std::function<void(const Expr &)> Scan = [&](const Expr &E) {
      for (const ExprPtr &Op : E.Ops)
        Scan(*Op);
      if (E.Kind != ExprKind::ArrayElem || E.Ops.empty() ||
          !E.Array->isReshaped())
        return;
      for (unsigned D = 0; D < E.Ops.size(); ++D) {
        if (E.Array->Dist.Dims[D].Kind != dist::DistKind::Block)
          continue;
        int64_t S;
        ExprPtr R;
        if (!extractLinearExpr(*E.Ops[D], Loop.IndVar, S, &R))
          continue;
        int64_t ConstRem;
        if (S != 1 || !R || constEvalInt(*R, ConstRem))
          continue; // Literal offsets are peeling's job.
        if (mentionsAny(*R, Assigned))
          continue; // Not loop-invariant.
        std::string Key = printExpr(*R);
        auto It = Votes.find(Key);
        if (It == Votes.end())
          Votes.emplace(Key,
                        std::make_pair(std::move(R), 1u));
        else
          ++It->second.second;
      }
    };
    for (const StmtPtr &St : Loop.Body) {
      if (St->Lhs)
        Scan(*St->Lhs);
      if (St->Rhs)
        Scan(*St->Rhs);
    }
    std::string BestKey;
    unsigned BestVotes = 0;
    for (auto &[Key, V] : Votes)
      if (V.second > BestVotes) {
        BestKey = Key;
        BestVotes = V.second;
      }
    if (BestVotes == 0)
      return;
    ExprPtr R = std::move(Votes[BestKey].first);

    // skew = R; do i' = Lb + skew, Ub + skew; i = i' - skew.
    ScalarSymbol *Skew = Proc.addTemp("skew", ScalarType::I64);
    ScalarSymbol *NewVar = Proc.addTemp("isk", ScalarType::I64);
    Out.push_back(makeAssign(useE(Skew), cloneExpr(*R)));
    ScalarSymbol *OldVar = Loop.IndVar;
    Loop.IndVar = NewVar;
    Loop.Lb = addE(std::move(Loop.Lb), useE(Skew));
    Loop.Ub = addE(std::move(Loop.Ub), useE(Skew));

    // Rewrite subscripts i + R -> i'; everything else reads the
    // recomputed original variable.
    std::function<void(ExprPtr &)> Rewrite = [&](ExprPtr &E) {
      int64_t S;
      ExprPtr Rem;
      if (E->Kind != ExprKind::ScalarUse &&
          extractLinearExpr(*E, OldVar, S, &Rem) && S == 1 && Rem &&
          printExpr(*Rem) == BestKey) {
        E = useE(NewVar);
        return;
      }
      for (ExprPtr &Op : E->Ops)
        Rewrite(Op);
    };
    std::function<void(Block &)> RewriteBlock = [&](Block &B) {
      for (StmtPtr &St : B) {
        if (St->Lhs)
          Rewrite(St->Lhs);
        if (St->Rhs)
          Rewrite(St->Rhs);
        if (St->Cond)
          Rewrite(St->Cond);
        if (St->Lb)
          Rewrite(St->Lb);
        if (St->Ub)
          Rewrite(St->Ub);
        for (ExprPtr &A : St->Args)
          Rewrite(A);
        RewriteBlock(St->Body);
        RewriteBlock(St->Then);
        RewriteBlock(St->Else);
      }
    };
    RewriteBlock(Loop.Body);
    Loop.Body.insert(
        Loop.Body.begin(),
        makeAssign(useE(OldVar), subE(useE(NewVar), useE(Skew))));
  }

  void tileLoop(StmtPtr &S, const Candidate &C, Block &Out) {
    Stmt &Loop = *S;
    ArraySymbol *A = C.Array;
    unsigned D = C.Dim;
    auto P = [&] { return queryE(DistQueryKind::NumProcs, A, D); };
    auto B = [&] { return queryE(DistQueryKind::BlockSize, A, D); };
    auto N = [&] { return queryE(DistQueryKind::DimSize, A, D); };

    ScalarSymbol *ProcVar = Proc.addTemp("pt", ScalarType::I64);
    StmtPtr TileLoop = makeDo(ProcVar, litE(0),
                              addConstE(P(), -1), litE(1));
    TileLoop->IsProcTile = true;
    TileLoop->SourceLine = Loop.SourceLine;

    // Same bound restriction as block affinity scheduling: iterations
    // whose element s*i + c falls in processor pt's block.
    ExprPtr LoNum = addConstE(mulE(useE(ProcVar), B()), 1 - C.Offset);
    ExprPtr HiNum = addConstE(
        minE(N(), mulE(addConstE(useE(ProcVar), 1), B())), -C.Offset);
    // Residual loops cover any iterations whose element s*i + c falls
    // outside [1, N]; the tiles cover exactly the in-bounds range, so
    // the three pieces partition the original iteration space.
    ExprPtr OrigLb = cloneExpr(*Loop.Lb);
    ExprPtr OrigUb = cloneExpr(*Loop.Ub);
    StmtPtr PreResidual = cloneStmt(Loop);
    PreResidual->Ub =
        minE(cloneExpr(*OrigUb),
             floorDivE(litE(0 - C.Offset), litE(C.Scale)));
    StmtPtr PostResidual = cloneStmt(Loop);
    PostResidual->Lb =
        maxE(cloneExpr(*OrigLb),
             addConstE(floorDivE(subE(N(), litE(C.Offset)),
                                 litE(C.Scale)),
                       1));

    ExprPtr ILo = ceilDivE(std::move(LoNum), litE(C.Scale));
    ExprPtr IHi = floorDivE(std::move(HiNum), litE(C.Scale));
    Loop.Lb = maxE(std::move(Loop.Lb), std::move(ILo));
    Loop.Ub = minE(std::move(Loop.Ub), std::move(IHi));

    TileContext Tile;
    Tile.Array = A;
    Tile.Dim = D;
    Tile.Scale = C.Scale;
    Tile.Offset = C.Offset;
    Tile.ProcVar = ProcVar;
    Tile.Kind = dist::DistKind::Block;
    Loop.Tiles.push_back(Tile);

    TileLoop->Body.push_back(std::move(S));
    Out.push_back(std::move(PreResidual));
    Out.push_back(std::move(TileLoop));
    Out.push_back(std::move(PostResidual));
  }
};

} // namespace

void dsm::xform::tileSerialLoops(Procedure &P) { SerialTiler(P).run(); }
