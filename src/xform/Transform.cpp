//===- xform/Transform.cpp - Pass pipeline and FP div/mod ------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "xform/Xform.h"

using namespace dsm;
using namespace dsm::xform;
using namespace dsm::ir;

//===----------------------------------------------------------------------===//
// Section 7.3: DIV/MOD using floating-point arithmetic
//===----------------------------------------------------------------------===//

namespace {

void reduceExpr(Expr &E) {
  for (ExprPtr &Op : E.Ops)
    reduceExpr(*Op);
  if (E.Kind != ExprKind::Bin)
    return;
  if (E.Op == BinOp::IDiv)
    E.Op = BinOp::IDivFp;
  else if (E.Op == BinOp::IMod)
    E.Op = BinOp::IModFp;
}

void reduceBlock(Block &B) {
  for (StmtPtr &S : B) {
    if (S->Lhs)
      reduceExpr(*S->Lhs);
    if (S->Rhs)
      reduceExpr(*S->Rhs);
    if (S->Lb)
      reduceExpr(*S->Lb);
    if (S->Ub)
      reduceExpr(*S->Ub);
    if (S->Step)
      reduceExpr(*S->Step);
    if (S->Cond)
      reduceExpr(*S->Cond);
    for (ExprPtr &E : S->ProcExtents)
      reduceExpr(*E);
    for (ExprPtr &A : S->Args)
      reduceExpr(*A);
    reduceBlock(S->Body);
    reduceBlock(S->Then);
    reduceBlock(S->Else);
  }
}

} // namespace

void dsm::xform::strengthReduceDivMod(Procedure &P) {
  reduceBlock(P.Body);
}

//===----------------------------------------------------------------------===//
// Pipeline (paper Section 7.4 ordering)
//===----------------------------------------------------------------------===//

Error dsm::xform::transformProcedure(Procedure &P,
                                     const XformOptions &Opts) {
  if (Opts.Parallelize) {
    if (Error E = parallelizeProcedure(P))
      return E;
  }
  if (Opts.Level >= ReshapeOptLevel::TilePeel)
    tileSerialLoops(P);
  if (Error E = lowerReshapedRefs(P, Opts.Level))
    return E;
  if (Opts.FpDivMod)
    strengthReduceDivMod(P);
  return Error::success();
}
