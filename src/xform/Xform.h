//===- xform/Xform.h - Compiler transformation passes -----------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler transformations of the paper's Sections 4.1 and 7, in
/// the order Section 7.4 prescribes:
///
///  1. parallelizeProcedure  -- doacross loops become SPMD ParallelDo
///     regions; affinity scheduling tiles the iteration space per
///     Figure 2 (block / cyclic / cyclic(k)), establishing TileContexts.
///  2. tileSerialLoops       -- serial loops referencing block-reshaped
///     arrays get processor-tile loops too (Section 7.1's "other
///     loops"); always order-preserving for block distributions.
///  3. lowerReshapedRefs     -- every reshaped ArrayElem becomes a
///     PortionElem (Table 1).  At ReshapeOptLevel::None the cell and
///     local offsets carry explicit div/mod; at TilePeel, TileContexts
///     replace them with processor coordinates and cheap strength-
///     reduced offsets (peeling boundary iterations of block loops so
///     neighbour references stay in-portion); at Full the indirect
///     portion-pointer loads are additionally hoisted out of the data
///     loops (Section 7.2).
///  4. strengthReduceDivMod  -- remaining integer div/mod in compiler-
///     generated index code switch to the FP-simulated forms
///     (Section 7.3: 11 cycles instead of 35 on the R10000).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_XFORM_XFORM_H
#define DSM_XFORM_XFORM_H

#include "ir/Ir.h"
#include "support/Error.h"

namespace dsm::xform {

/// How aggressively reshaped references are optimized; the three levels
/// match the rows of the paper's Table 2.
enum class ReshapeOptLevel {
  None,     ///< Naive lowering: div/mod + indirect load per reference.
  TilePeel, ///< Tiling and peeling remove div/mod from inner loops.
  Full      ///< + hoisting of indirect loads (and the CSE it enables).
};

struct XformOptions {
  bool Parallelize = true;
  ReshapeOptLevel Level = ReshapeOptLevel::Full;
  bool FpDivMod = true; ///< Section 7.3 FP-simulated integer divide.
};

/// Runs the whole pipeline on one procedure.
Error transformProcedure(ir::Procedure &P, const XformOptions &Opts);

/// Pass 1: doacross -> ParallelDo with Figure 2 affinity scheduling.
Error parallelizeProcedure(ir::Procedure &P);

/// Pass 2: processor-tiling of serial loops over block-reshaped arrays.
void tileSerialLoops(ir::Procedure &P);

/// Pass 3: reshaped-reference lowering (with peeling and hoisting).
Error lowerReshapedRefs(ir::Procedure &P, ReshapeOptLevel Level);

/// Pass 4: IDiv/IMod -> IDivFp/IModFp throughout the procedure.
void strengthReduceDivMod(ir::Procedure &P);

} // namespace dsm::xform

#endif // DSM_XFORM_XFORM_H
