//===- xform/Parallelize.cpp - doacross -> SPMD transformation ------------===//
//
// Part of the dsm-dist-repro project.
//
// Implements the paper's Section 4.1 (Figure 2): a doacross loop (nest)
// becomes a ParallelDo over processors; with an affinity clause the
// iteration bounds are restricted to the processor's portion of the
// named array dimension for block, cyclic, and cyclic(k) distributions.
// Without affinity, the schedtype clause selects simple (block-of-
// iterations) or interleave scheduling.
//
//===----------------------------------------------------------------------===//

#include <algorithm>

#include "support/StringUtils.h"
#include "xform/ExprBuild.h"
#include "xform/Xform.h"

using namespace dsm;
using namespace dsm::xform;
using namespace dsm::ir;

namespace {

class Parallelizer {
public:
  Parallelizer(Procedure &P) : Proc(P) {}

  Error run() {
    processBlock(Proc.Body, /*InParallel=*/false);
    return std::move(Diags);
  }

private:
  Procedure &Proc;
  Error Diags;
  /// A chunk-row wrapper produced by cyclic(k) scheduling, waiting to
  /// be spliced around the data loop.
  StmtPtr PendingWrapper;

  void error(int Line, const std::string &Message) {
    Diags.addError(Message, Proc.Name, Line);
  }

  void stripInnerDoacross(Block &B) {
    for (StmtPtr &S : B) {
      if (S->Doacross)
        S->Doacross.reset();
      stripInnerDoacross(S->Body);
      stripInnerDoacross(S->Then);
      stripInnerDoacross(S->Else);
    }
  }

  void processBlock(Block &B, bool InParallel) {
    for (StmtPtr &S : B) {
      if (S->Kind == StmtKind::Do && S->Doacross &&
          S->Doacross->IsDoacross && !InParallel) {
        transformDoacross(S);
        continue;
      }
      bool Nested = InParallel || S->Kind == StmtKind::ParallelDo;
      processBlock(S->Body, Nested);
      processBlock(S->Then, Nested);
      processBlock(S->Else, Nested);
    }
  }

  /// True when \p E references \p Var anywhere.
  static bool mentionsVar(const Expr &E, const ScalarSymbol *Var) {
    if (E.Kind == ExprKind::ScalarUse && E.Scalar == Var)
      return true;
    for (const ExprPtr &Op : E.Ops)
      if (mentionsVar(*Op, Var))
        return true;
    return false;
  }

  /// Coalesces the outer two loops of a rectangular doacross nest into
  /// one flattened loop partitioned across processors.  On success the
  /// flattened structure is installed into \p PD's body and *Slot is
  /// consumed.  Iteration order within each processor stays
  /// lexicographic.
  bool coalesceNest(StmtPtr &Slot, Stmt &PD, ScalarSymbol *P,
                    SchedKind Sched) {
    Stmt &Outer = *Slot;
    if (Outer.Body.size() != 1 || Outer.Body[0]->Kind != StmtKind::Do)
      return false;
    Stmt &Inner = *Outer.Body[0];
    if (mentionsVar(*Inner.Lb, Outer.IndVar) ||
        mentionsVar(*Inner.Ub, Outer.IndVar) ||
        mentionsVar(*Inner.Step, Outer.IndVar))
      return false;

    ScalarSymbol *NOut = Proc.addTemp("nout", ScalarType::I64);
    ScalarSymbol *NIn = Proc.addTemp("nin", ScalarType::I64);
    ScalarSymbol *T = Proc.addTemp("t", ScalarType::I64);
    PD.PrivateScalars.push_back(NOut);
    PD.PrivateScalars.push_back(NIn);
    PD.PrivateScalars.push_back(T);

    auto TripCount = [&](const Stmt &L) {
      return maxE(litE(0),
                  divE(addE(subE(cloneExpr(*L.Ub), cloneExpr(*L.Lb)),
                            cloneExpr(*L.Step)),
                       cloneExpr(*L.Step)));
    };
    PD.Body.push_back(makeAssign(useE(NOut), TripCount(Outer)));
    PD.Body.push_back(makeAssign(useE(NIn), TripCount(Inner)));
    ExprPtr Total = mulE(useE(NOut), useE(NIn));

    // Flattened loop bounds per schedule kind.
    StmtPtr Flat;
    if (Sched == SchedKind::Interleave) {
      Flat = makeDo(T, useE(P), addConstE(std::move(Total), -1),
                    distQuery(DistQueryKind::TotalProcs, nullptr, 0));
    } else {
      ScalarSymbol *Chunk = Proc.addTemp("chunk", ScalarType::I64);
      PD.PrivateScalars.push_back(Chunk);
      PD.Body.push_back(makeAssign(
          useE(Chunk),
          ceilDivE(cloneExpr(*Total),
                   distQuery(DistQueryKind::TotalProcs, nullptr, 0))));
      Flat = makeDo(
          T, mulE(useE(P), useE(Chunk)),
          minE(addConstE(std::move(Total), -1),
               addConstE(mulE(addConstE(useE(P), 1), useE(Chunk)), -1)),
          litE(1));
    }
    // Recover the original loop variables:
    //   outer = OuterLb + (t / nin) * OuterStep
    //   inner = InnerLb + (t mod nin) * InnerStep
    Flat->Body.push_back(makeAssign(
        useE(Outer.IndVar),
        addE(cloneExpr(*Outer.Lb),
             mulE(divE(useE(T), useE(NIn)), cloneExpr(*Outer.Step)))));
    Flat->Body.push_back(makeAssign(
        useE(Inner.IndVar),
        addE(cloneExpr(*Inner.Lb),
             mulE(modE(useE(T), useE(NIn)), cloneExpr(*Inner.Step)))));
    for (StmtPtr &S : Inner.Body)
      Flat->Body.push_back(std::move(S));
    PD.Body.push_back(std::move(Flat));
    Slot.reset();
    return true;
  }

  /// Rewrites one nest loop's bounds for affinity scheduling; on
  /// success the loop carries a TileContext.  cyclic(k) additionally
  /// leaves a chunk-row wrapper in PendingWrapper.
  bool scheduleAffinityLoop(Stmt &Loop, const DoacrossInfo::Affinity &A,
                            ScalarSymbol *ProcVar) {
    ArraySymbol *Arr = A.Array;
    unsigned Dim = A.Dim;
    int64_t S = A.Scale;
    int64_t C = A.Offset;
    if (S <= 0) {
      error(Loop.SourceLine,
            "affinity coefficient must be positive for scheduling");
      return false;
    }
    dist::DistKind Kind = Arr->Dist.Dims[Dim].Kind;

    int64_t StepLit = 0;
    bool StepIsOne = constEvalInt(*Loop.Step, StepLit) && StepLit == 1;

    auto P = [&] { return queryE(DistQueryKind::NumProcs, Arr, Dim); };
    auto Bsz = [&] { return queryE(DistQueryKind::BlockSize, Arr, Dim); };
    auto N = [&] { return queryE(DistQueryKind::DimSize, Arr, Dim); };
    auto K = [&] { return queryE(DistQueryKind::Chunk, Arr, Dim); };
    auto Pv = [&] { return useE(ProcVar); };

    TileContext Tile;
    Tile.Array = Arr;
    Tile.Dim = Dim;
    Tile.Scale = S;
    Tile.Offset = C;
    Tile.ProcVar = ProcVar;
    Tile.Kind = Kind;
    Tile.Chunk = Arr->Dist.Dims[Dim].Chunk;

    switch (Kind) {
    case dist::DistKind::Block: {
      // Processor p owns elements e in [p*b+1, min(N, (p+1)*b)];
      // iterations satisfy s*i + c = e.
      ExprPtr LoNum = addConstE(mulE(Pv(), Bsz()), 1 - C);
      ExprPtr HiNum =
          addConstE(minE(N(), mulE(addConstE(Pv(), 1), Bsz())), -C);
      ExprPtr ILo = ceilDivE(std::move(LoNum), litE(S));
      ExprPtr IHi = floorDivE(std::move(HiNum), litE(S));
      ExprPtr NewLb = maxE(cloneExpr(*Loop.Lb), std::move(ILo));
      ExprPtr NewUb = minE(cloneExpr(*Loop.Ub), std::move(IHi));
      if (!StepIsOne) {
        // Realign onto the original iteration grid LB + k*step
        // (Figure 2's ceiling adjustment).
        ExprPtr Delta =
            maxE(subE(std::move(NewLb), cloneExpr(*Loop.Lb)), litE(0));
        ExprPtr Steps =
            ceilDivE(std::move(Delta), cloneExpr(*Loop.Step));
        NewLb = addE(cloneExpr(*Loop.Lb),
                     mulE(std::move(Steps), cloneExpr(*Loop.Step)));
      }
      Loop.Lb = std::move(NewLb);
      Loop.Ub = std::move(NewUb);
      Loop.Tiles.push_back(Tile);
      return true;
    }
    case dist::DistKind::Cyclic: {
      if (S != 1 || !StepIsOne) {
        error(Loop.SourceLine,
              "cyclic affinity scheduling requires unit stride and "
              "coefficient (the paper omits the general forms)");
        return false;
      }
      // i = LB + ((p + 1 - c - LB) mod P, made non-negative); step P.
      ExprPtr Phase = modE(
          addE(modE(subE(addConstE(Pv(), 1 - C), cloneExpr(*Loop.Lb)),
                    P()),
               P()),
          P());
      Loop.Lb = addE(cloneExpr(*Loop.Lb), std::move(Phase));
      Loop.Step = P();
      Loop.Tiles.push_back(Tile);
      return true;
    }
    case dist::DistKind::BlockCyclic: {
      if (S != 1 || !StepIsOne) {
        error(Loop.SourceLine,
              "cyclic(k) affinity scheduling requires unit stride and "
              "coefficient");
        return false;
      }
      // Triply nested form (Figure 2): an outer chunk-row loop walks
      // this processor's chunks; the inner loop covers one chunk.
      ScalarSymbol *RowVar = Proc.addTemp("crow", ScalarType::I64);
      ScalarSymbol *BaseVar = Proc.addTemp("ebase", ScalarType::I64);
      Tile.ChunkRowVar = RowVar;

      ExprPtr NumChunks = ceilDivE(N(), K());
      ExprPtr RowUb =
          divE(subE(addConstE(std::move(NumChunks), -1), Pv()), P());
      StmtPtr RowLoop = makeDo(RowVar, litE(0), std::move(RowUb),
                               litE(1));

      // ebase = (p + m*P) * k  (0-based first element of the chunk).
      ExprPtr EBase = mulE(addE(Pv(), mulE(useE(RowVar), P())), K());
      RowLoop->Body.push_back(makeAssign(useE(BaseVar), std::move(EBase)));

      ExprPtr NewLb = maxE(cloneExpr(*Loop.Lb),
                           addConstE(useE(BaseVar), 1 - C));
      ExprPtr NewUb =
          minE(cloneExpr(*Loop.Ub),
               addConstE(minE(N(), addE(useE(BaseVar), K())), -C));
      Loop.Lb = std::move(NewLb);
      Loop.Ub = std::move(NewUb);
      Loop.Tiles.push_back(Tile);
      PendingWrapper = std::move(RowLoop);
      return true;
    }
    case dist::DistKind::None:
      error(Loop.SourceLine, "affinity names an undistributed dimension");
      return false;
    }
    return false;
  }

  void transformDoacross(StmtPtr &Slot) {
    Stmt &Loop = *Slot;
    DoacrossInfo Info = std::move(*Loop.Doacross);
    Loop.Doacross.reset();
    stripInnerDoacross(Loop.Body);

    auto PD = std::make_unique<Stmt>(StmtKind::ParallelDo);
    PD->SourceLine = Loop.SourceLine;
    PD->Sched = Info.Sched;
    PD->PrivateScalars = Info.Locals;

    // One processor variable per affinity dimension, ordered by array
    // dimension so the ParallelDo's cell linearization matches the
    // processor grid's.  Affinities on undistributed arrays (e.g. in a
    // base subroutine whose formal only becomes reshaped in clones) are
    // dropped: the loop falls back to simple scheduling.
    struct Sched {
      size_t NestIdx;
      const DoacrossInfo::Affinity *Aff;
      ScalarSymbol *ProcVar;
    };
    std::vector<Sched> Order;
    if (Info.Sched == SchedKind::Affinity)
      for (size_t V = 0; V < Info.NestVars.size(); ++V) {
        const DoacrossInfo::Affinity &A = Info.Affinities[V];
        if (A.Present && A.Array->HasDist &&
            A.Array->Dist.Dims[A.Dim].isDistributed())
          Order.push_back(Sched{V, &Info.Affinities[V], nullptr});
      }

    if (!Order.empty()) {
      // Locate the nest loops (sema verified the perfect nest).
      std::vector<Stmt *> NestLoops;
      Stmt *Cur = &Loop;
      NestLoops.push_back(Cur);
      for (size_t V = 1; V < Info.NestVars.size(); ++V) {
        Cur = Cur->Body[0].get();
        NestLoops.push_back(Cur);
      }

      std::sort(Order.begin(), Order.end(),
                [](const Sched &A, const Sched &B) {
                  return A.Aff->Dim < B.Aff->Dim;
                });
      for (Sched &S : Order) {
        S.ProcVar = Proc.addTemp("p", ScalarType::I64);
        PD->ProcVars.push_back(S.ProcVar);
        PD->ProcExtents.push_back(queryE(DistQueryKind::NumProcs,
                                         S.Aff->Array, S.Aff->Dim));
        PD->PrivateScalars.push_back(S.ProcVar);
      }

      // Rewrite each scheduled nest loop's bounds.  Process innermost
      // first so NestLoops pointers stay valid when cyclic(k) wrappers
      // splice in.
      std::sort(Order.begin(), Order.end(),
                [](const Sched &A, const Sched &B) {
                  return A.NestIdx > B.NestIdx;
                });
      for (const Sched &S : Order) {
        Stmt *L = NestLoops[S.NestIdx];
        if (!scheduleAffinityLoop(*L, *S.Aff, S.ProcVar))
          return;
        if (PendingWrapper) {
          StmtPtr Wrapper = std::move(PendingWrapper);
          if (S.NestIdx == 0) {
            Wrapper->Body.push_back(std::move(Slot));
            Slot = std::move(Wrapper);
          } else {
            Stmt *Parent = NestLoops[S.NestIdx - 1];
            StmtPtr Inner = std::move(Parent->Body[0]);
            Wrapper->Body.push_back(std::move(Inner));
            Parent->Body[0] = std::move(Wrapper);
          }
        }
      }
      PD->Body.push_back(std::move(Slot));
      Slot = std::move(PD);
      return;
    }

    // No affinity: partition the iteration space.
    ScalarSymbol *P = Proc.addTemp("p", ScalarType::I64);
    PD->ProcVars.push_back(P);
    PD->ProcExtents.push_back(
        distQuery(DistQueryKind::TotalProcs, nullptr, 0));
    PD->PrivateScalars.push_back(P);
    ExprPtr NumProcs = distQuery(DistQueryKind::TotalProcs, nullptr, 0);

    // A doacross nest without affinity schedules the *flattened*
    // (outer x inner) iteration space so processor counts beyond the
    // outer extent still get work (the MP runtime's behaviour).
    // Requires the inner bounds to be independent of the outer loop
    // variable (rectangular nest).
    if (Info.NestVars.size() >= 2 &&
        coalesceNest(Slot, *PD, P, Info.Sched)) {
      Slot = std::move(PD);
      return;
    }

    if (Info.Sched == SchedKind::Interleave ||
        Info.Sched == SchedKind::Dynamic) {
      // Iteration m goes to processor m mod P:
      //   do i = LB + p*step, UB, P*step
      // Dynamic scheduling is modeled as interleaving; the simulator's
      // sequentialized processors cannot express true work stealing
      // (see DESIGN.md).
      ExprPtr NewLb = addE(cloneExpr(*Loop.Lb),
                           mulE(useE(P), cloneExpr(*Loop.Step)));
      ExprPtr NewStep = mulE(std::move(NumProcs), cloneExpr(*Loop.Step));
      Loop.Lb = std::move(NewLb);
      Loop.Step = std::move(NewStep);
      PD->Body.push_back(std::move(Slot));
      Slot = std::move(PD);
      return;
    }

    // Simple: contiguous blocks of ceil(niter/P) iterations.
    ScalarSymbol *NIter = Proc.addTemp("niter", ScalarType::I64);
    ScalarSymbol *Chunk = Proc.addTemp("chunk", ScalarType::I64);
    PD->PrivateScalars.push_back(NIter);
    PD->PrivateScalars.push_back(Chunk);
    PD->Body.push_back(makeAssign(
        useE(NIter),
        maxE(litE(0),
             divE(addE(subE(cloneExpr(*Loop.Ub), cloneExpr(*Loop.Lb)),
                       cloneExpr(*Loop.Step)),
                  cloneExpr(*Loop.Step)))));
    PD->Body.push_back(makeAssign(
        useE(Chunk), ceilDivE(useE(NIter), std::move(NumProcs))));
    ExprPtr NewLb =
        addE(cloneExpr(*Loop.Lb),
             mulE(mulE(useE(P), useE(Chunk)), cloneExpr(*Loop.Step)));
    ExprPtr NewUb = minE(
        cloneExpr(*Loop.Ub),
        addE(cloneExpr(*Loop.Lb),
             mulE(addConstE(mulE(addConstE(useE(P), 1), useE(Chunk)), -1),
                  cloneExpr(*Loop.Step))));
    Loop.Lb = std::move(NewLb);
    Loop.Ub = std::move(NewUb);
    PD->Body.push_back(std::move(Slot));
    Slot = std::move(PD);
  }
};

} // namespace

Error dsm::xform::parallelizeProcedure(Procedure &P) {
  return Parallelizer(P).run();
}
