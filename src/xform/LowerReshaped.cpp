//===- xform/LowerReshaped.cpp - Reshaped-reference lowering ---------------===//
//
// Part of the dsm-dist-repro project.
//
// Lowers every reference to a reshaped array into the two-level
// processor-array form of the paper's Table 1, and implements the
// Section 7 optimizations:
//
//  * TileContexts (from affinity scheduling or serial tiling) replace
//    the div/mod owner computation with the known processor coordinate;
//  * block loops are peeled so neighbour references (A(i-1), A(i+1))
//    stay within the portion (Section 7.1's peeling example);
//  * cyclic and cyclic(k) portions use strength-reduced local-index
//    induction temporaries ("local_index = local_index + 1");
//  * at ReshapeOptLevel::Full the indirect portion-pointer loads are
//    hoisted out of the data loops into portion-base temporaries
//    (Section 7.2), enabling the CSE the paper describes.
//
//===----------------------------------------------------------------------===//

#include <unordered_map>
#include <unordered_set>

#include "support/StringUtils.h"
#include "xform/ExprBuild.h"
#include "xform/Xform.h"

using namespace dsm;
using namespace dsm::xform;
using namespace dsm::ir;

namespace {

/// Position of dimension \p D among the distributed dimensions of
/// \p A (processor-grid factoring assigns extents by this position).
int distPosition(const ArraySymbol *A, unsigned D) {
  int Pos = 0;
  for (unsigned I = 0; I < D; ++I)
    Pos += A->Dist.Dims[I].isDistributed();
  return Pos;
}

/// True when references to dimension \p BD of \p B may reuse a tile
/// context established for dimension \p CtxD of \p CtxA: the ownership
/// map (extent, processor count, kind, chunk) must provably coincide.
/// This is the paper Section 7.1 rule -- "other reshaped arrays that
/// match the first array in size and distribution" -- applied per
/// dimension, which also covers the transpose's A(*,block) / B(block,*)
/// pair.
bool compatibleDim(const ArraySymbol *CtxA, unsigned CtxD,
                   const ArraySymbol *B, unsigned BD) {
  if (CtxA == B)
    return CtxD == BD;
  if (!CtxA->isReshaped() || !B->isReshaped())
    return CtxA->HasDist && B->HasDist && CtxA == B;
  // Same per-dimension specifier and extent...
  if (!(CtxA->Dist.Dims[CtxD] == B->Dist.Dims[BD]))
    return false;
  if (!exprStructEq(*CtxA->DimSizes[CtxD], *B->DimSizes[BD]))
    return false;
  // ... and the same processor count: the grid factoring depends only
  // on the count of distributed dimensions, the position among them,
  // and the onto weights.
  if (CtxA->Dist.numDistributedDims() != B->Dist.numDistributedDims())
    return false;
  if (CtxA->Dist.OntoWeights != B->Dist.OntoWeights)
    return false;
  return distPosition(CtxA, CtxD) == distPosition(B, BD);
}

class Lowerer {
public:
  Lowerer(Procedure &P, ReshapeOptLevel Level) : Proc(P), Level(Level) {}

  Error run() {
    Block NewBody;
    processBlock(Proc.Body, NewBody);
    Proc.Body = std::move(NewBody);
    return std::move(Diags);
  }

private:
  struct ActiveTile {
    const TileContext *Tile;
    ScalarSymbol *IndVar;   ///< The data loop's variable.
    const Stmt *OwnerLoop;  ///< The data loop itself.
    ScalarSymbol *InductionTemp = nullptr; ///< Local-offset temp.
  };

  Procedure &Proc;
  ReshapeOptLevel Level;
  Error Diags;
  std::vector<ActiveTile> Tiles;

  /// Per tiled-loop collectors.
  struct LoopScope {
    const Stmt *Loop = nullptr; ///< The tiled loop this scope wraps.
    Block PreStmts;  ///< Emitted immediately before the loop.
    Block IncrStmts; ///< Appended to the loop body.
    std::unordered_map<std::string, ScalarSymbol *> HoistCache;
    size_t FirstTileIdx = 0;
  };
  std::vector<LoopScope> Scopes;

  void error(int Line, const std::string &Message) {
    Diags.addError(Message, Proc.Name, Line);
  }

  //===-- Structure walking -------------------------------------------===//

  void processBlock(Block &B, Block &Out) {
    for (StmtPtr &S : B)
      processStmt(S, Out);
  }

  void processStmt(StmtPtr &S, Block &Out);
  void processTiledLoop(StmtPtr &S, Block &Out);
  void emitInterior(StmtPtr &S, Block &Out);
  void lowerAllExprs(Stmt &S);
  void lowerExpr(ExprPtr &E);

  //===-- Peeling ------------------------------------------------------===//

  struct PeelAmounts {
    int64_t Front = 0;
    int64_t Back = 0;
  };
  PeelAmounts computePeels(const Stmt &Loop);
  void scanForPeels(const Expr &E, const Stmt &Loop, PeelAmounts &Peels);
  void scanBlockForPeels(const Block &B, const Stmt &Loop,
                         PeelAmounts &Peels);

  //===-- Reference lowering -------------------------------------------===//

  /// The active tile (if any) usable for dimension \p Dim of a
  /// reference to \p A whose subscript is \p Sub.  On success *Delta is
  /// the literal element offset from the scheduled footprint.
  ActiveTile *findContext(const ArraySymbol *A, unsigned Dim,
                          const Expr &Sub, int64_t *Delta);

  /// \p MemoQueries routes the DistQuery leaves through memoQuery();
  /// only callers whose result provably lands after the outermost
  /// scope's PreStmts may set it (CSE can move naive chains above an
  /// enclosing tiled loop's pre-statements, so those stay inline).
  ExprPtr buildNaiveOwner(ArraySymbol *A, unsigned Dim, const Expr &Sub,
                          bool MemoQueries = false);
  ExprPtr buildNaiveLocal(ArraySymbol *A, unsigned Dim, ExprPtr E0,
                          bool MemoQueries = false);
  ExprPtr buildPortionElem(Expr &Ref);

  /// At Full level, each distinct DistQuery leaf -- block size,
  /// processor count, chunk, portion extent, all distribution
  /// constants of a reshaped array -- is computed once into a temp
  /// before the outermost tiled loop and reused at every
  /// strength-reduction site in the nest, instead of being re-cloned
  /// into every div/mod chain; the lowered (and hence bytecode-
  /// compiled) program shrinks accordingly.  Outside a tiled loop, or
  /// below Full, the query stays inline.
  ExprPtr memoQuery(DistQueryKind K, ArraySymbol *A, unsigned Dim);

  ScalarSymbol *inductionTempFor(ActiveTile &T, const Stmt *OwnerLoop);

  /// At Full level, caches the loop-invariant expression \p E (stride
  /// products of distribution parameters, which Section 7.2 marks
  /// constant) in a temp hoisted before the outermost tiled loop.
  ExprPtr hoistInvariant(ExprPtr E, const char *Hint);

  const Stmt *CurrentLoop = nullptr; ///< Innermost tiled loop.

  /// Loop-level hoisting + CSE of naive owner/local subexpressions
  /// (the div and mod chains), the paper's Section 7.2: these are
  /// always safe for reshaped arrays, so each chain is computed once at
  /// the outermost position where its operands are available -- out of
  /// inner loops and out of conditionals.  Active only at Full level.
  struct CseLevel {
    const ScalarSymbol *IndVar = nullptr; ///< Loop variable (null: base).
    Block *Out = nullptr; ///< The block being rebuilt at this level.
    std::unordered_set<const ScalarSymbol *> Assigned;
    std::unordered_map<std::string, ScalarSymbol *> Cache;
  };
  std::vector<CseLevel> CseLevels;

  static void collectAssigned(
      const Block &B, std::unordered_set<const ScalarSymbol *> &Set) {
    for (const StmtPtr &S : B) {
      if (S->Kind == StmtKind::Assign &&
          S->Lhs->Kind == ExprKind::ScalarUse)
        Set.insert(S->Lhs->Scalar);
      if (S->IndVar)
        Set.insert(S->IndVar);
      for (const ScalarSymbol *V : S->ProcVars)
        Set.insert(V);
      collectAssigned(S->Body, Set);
      collectAssigned(S->Then, Set);
      collectAssigned(S->Else, Set);
    }
  }

  static void collectMentions(
      const Expr &E, std::unordered_set<const ScalarSymbol *> &Set) {
    if (E.Kind == ExprKind::ScalarUse)
      Set.insert(E.Scalar);
    for (const ExprPtr &Op : E.Ops)
      collectMentions(*Op, Set);
  }

  ExprPtr cseSubexpr(ExprPtr E, const char *Hint) {
    if (Level != ReshapeOptLevel::Full || CseLevels.empty() ||
        E->Kind != ExprKind::Bin)
      return E;
    std::string Key = printExpr(*E);
    for (CseLevel &L : CseLevels) {
      auto It = L.Cache.find(Key);
      if (It != L.Cache.end())
        return useE(It->second);
    }
    // Deepest level whose loop variable or locally-assigned scalars the
    // expression depends on; the temp lives there, evaluated once per
    // that level's iteration.
    std::unordered_set<const ScalarSymbol *> Mentions;
    collectMentions(*E, Mentions);
    size_t Target = 0;
    for (size_t I = CseLevels.size(); I-- > 0;) {
      const CseLevel &L = CseLevels[I];
      bool Depends = L.IndVar && Mentions.count(L.IndVar);
      for (const ScalarSymbol *V : L.Assigned)
        Depends |= Mentions.count(V) != 0;
      if (Depends) {
        Target = I;
        break;
      }
    }
    CseLevel &L = CseLevels[Target];
    ScalarSymbol *Temp = Proc.addTemp(Hint, ScalarType::I64);
    L.Out->push_back(makeAssign(useE(Temp), std::move(E)));
    L.Cache.emplace(Key, Temp);
    return useE(Temp);
  }
};

ExprPtr Lowerer::memoQuery(DistQueryKind K, ArraySymbol *A,
                           unsigned Dim) {
  if (Level != ReshapeOptLevel::Full || Scopes.empty())
    return queryE(K, A, Dim);
  LoopScope &Scope = Scopes.front();
  std::string Key = "dq|" + std::to_string(static_cast<int>(K)) + "|" +
                    A->Name + "|" + std::to_string(Dim);
  auto It = Scope.HoistCache.find(Key);
  if (It != Scope.HoistCache.end())
    return useE(It->second);
  ScalarSymbol *Temp = Proc.addTemp("dq", ScalarType::I64);
  Scope.PreStmts.push_back(makeAssign(useE(Temp), queryE(K, A, Dim)));
  Scope.HoistCache.emplace(Key, Temp);
  return useE(Temp);
}

ExprPtr Lowerer::hoistInvariant(ExprPtr E, const char *Hint) {
  if (Level != ReshapeOptLevel::Full || Scopes.empty())
    return E;
  // Literals and single queries are free; only cache composites.
  if (E->Kind != ExprKind::Bin)
    return E;
  LoopScope &Scope = Scopes.front();
  std::string Key = std::string(Hint) + "|" + printExpr(*E);
  auto It = Scope.HoistCache.find(Key);
  if (It != Scope.HoistCache.end())
    return useE(It->second);
  ScalarSymbol *Temp = Proc.addTemp(Hint, ScalarType::I64);
  Scope.PreStmts.push_back(makeAssign(useE(Temp), std::move(E)));
  Scope.HoistCache.emplace(Key, Temp);
  return useE(Temp);
}

void Lowerer::processStmt(StmtPtr &S, Block &Out) {
  if (S->Kind == StmtKind::Do && !S->Tiles.empty() &&
      Level >= ReshapeOptLevel::TilePeel) {
    processTiledLoop(S, Out);
    return;
  }
  // Generic statement: lower its own expressions, then rebuild nested
  // blocks.  Loop and parallel bodies open a CSE level so invariant
  // div/mod chains hoist out of them (If arms deliberately do not:
  // these operations are always safe for reshaped arrays and move
  // above conditionals, paper Section 7.2).
  lowerAllExprs(*S);
  {
    Block NewBody;
    if (S->Kind == StmtKind::Do || S->Kind == StmtKind::ParallelDo) {
      CseLevels.push_back(CseLevel{});
      CseLevel &L = CseLevels.back();
      L.IndVar = S->IndVar;
      L.Out = &NewBody;
      collectAssigned(S->Body, L.Assigned);
      for (const ScalarSymbol *V : S->ProcVars)
        L.Assigned.insert(V);
      processBlock(S->Body, NewBody);
      CseLevels.pop_back();
    } else {
      processBlock(S->Body, NewBody);
    }
    S->Body = std::move(NewBody);
    Block NewThen;
    processBlock(S->Then, NewThen);
    S->Then = std::move(NewThen);
    Block NewElse;
    processBlock(S->Else, NewElse);
    S->Else = std::move(NewElse);
  }
  Out.push_back(std::move(S));
}

void Lowerer::processTiledLoop(StmtPtr &S, Block &Out) {
  Stmt &Loop = *S;
  PeelAmounts Peels = computePeels(Loop);
  int64_t StepLit = 0;
  bool UnitStep = constEvalInt(*Loop.Step, StepLit) && StepLit == 1;

  if ((Peels.Front > 0 || Peels.Back > 0) && UnitStep) {
    // Split into front-peel / interior / back-peel; the peeled copies
    // lose this loop's contexts and lower naively.
    ExprPtr OrigLb = cloneExpr(*Loop.Lb);
    ExprPtr OrigUb = cloneExpr(*Loop.Ub);

    if (Peels.Front > 0) {
      StmtPtr Front = cloneStmt(Loop);
      Front->Tiles.clear();
      Front->Ub = minE(cloneExpr(*OrigUb),
                       addConstE(cloneExpr(*OrigLb), Peels.Front - 1));
      processStmt(Front, Out);
    }
    if (Peels.Back > 0) {
      StmtPtr Back = cloneStmt(Loop);
      Back->Tiles.clear();
      Back->Lb = maxE(addConstE(cloneExpr(*OrigLb), Peels.Front),
                      addConstE(cloneExpr(*OrigUb), -Peels.Back + 1));
      Loop.Lb = addConstE(std::move(OrigLb), Peels.Front);
      Loop.Ub = addConstE(std::move(OrigUb), -Peels.Back);
      emitInterior(S, Out);
      processStmt(Back, Out);
      return;
    }
    Loop.Lb = addConstE(std::move(OrigLb), Peels.Front);
    Loop.Ub = std::move(OrigUb);
  } else if ((Peels.Front > 0 || Peels.Back > 0) && !UnitStep) {
    // Cannot peel a non-unit-step loop; drop the contexts so every
    // reference lowers naively (correct, just slower).
    Loop.Tiles.clear();
    processStmt(S, Out);
    return;
  }
  emitInterior(S, Out);
}


void Lowerer::emitInterior(StmtPtr &S, Block &Out) {
  Stmt &Loop = *S;
  Scopes.push_back(LoopScope{});
  Scopes.back().Loop = &Loop;
  Scopes.back().FirstTileIdx = Tiles.size();
  for (const TileContext &T : Loop.Tiles)
    Tiles.push_back(ActiveTile{&T, Loop.IndVar, &Loop, nullptr});
  const Stmt *SavedLoop = CurrentLoop;
  CurrentLoop = &Loop;

  // Bounds are loop-entry expressions; lower any reshaped refs inside.
  lowerExpr(Loop.Lb);
  lowerExpr(Loop.Ub);
  lowerExpr(Loop.Step);

  Block NewBody;
  {
    CseLevels.push_back(CseLevel{});
    CseLevel &L = CseLevels.back();
    L.IndVar = Loop.IndVar;
    L.Out = &NewBody;
    collectAssigned(Loop.Body, L.Assigned);
    processBlock(Loop.Body, NewBody);
    CseLevels.pop_back();
  }
  LoopScope Scope = std::move(Scopes.back());
  Scopes.pop_back();
  for (StmtPtr &Incr : Scope.IncrStmts)
    NewBody.push_back(std::move(Incr));
  Loop.Body = std::move(NewBody);

  Tiles.resize(Scope.FirstTileIdx);
  CurrentLoop = SavedLoop;

  for (StmtPtr &Pre : Scope.PreStmts)
    Out.push_back(std::move(Pre));
  Out.push_back(std::move(S));
}

void Lowerer::lowerAllExprs(Stmt &S) {
  if (S.Lhs)
    lowerExpr(S.Lhs);
  if (S.Rhs)
    lowerExpr(S.Rhs);
  if (S.Lb)
    lowerExpr(S.Lb);
  if (S.Ub)
    lowerExpr(S.Ub);
  if (S.Step)
    lowerExpr(S.Step);
  if (S.Cond)
    lowerExpr(S.Cond);
  for (ExprPtr &E : S.ProcExtents)
    lowerExpr(E);
  // Call arguments: an array reference at argument position denotes the
  // array (or the address of an element/portion), not a value -- keep
  // the high-level form and lower only the subscripts.
  for (ExprPtr &A : S.Args) {
    if (A->Kind == ExprKind::ArrayElem)
      for (ExprPtr &Op : A->Ops)
        lowerExpr(Op);
    else
      lowerExpr(A);
  }
}

void Lowerer::lowerExpr(ExprPtr &E) {
  // Children first.
  for (ExprPtr &Op : E->Ops)
    lowerExpr(Op);
  if (E->Kind != ExprKind::ArrayElem || E->Ops.empty())
    return; // Whole-array references stay as-is.
  if (!E->Array->isReshaped())
    return;
  E = buildPortionElem(*E);
}

//===----------------------------------------------------------------------===//
// Peeling analysis
//===----------------------------------------------------------------------===//

void Lowerer::scanForPeels(const Expr &E, const Stmt &Loop,
                           PeelAmounts &Peels) {
  for (const ExprPtr &Op : E.Ops)
    scanForPeels(*Op, Loop, Peels);
  if (E.Kind != ExprKind::ArrayElem || E.Ops.empty() ||
      !E.Array->isReshaped())
    return;
  for (const TileContext &T : Loop.Tiles) {
    if (T.Kind != dist::DistKind::Block)
      continue;
    for (unsigned D = 0; D < E.Ops.size(); ++D) {
      if (!compatibleDim(T.Array, T.Dim, E.Array, D))
        continue;
      int64_t S, C;
      if (!extractLinear(*E.Ops[D], Loop.IndVar, S, C))
        continue;
      if (S != T.Scale)
        continue;
      int64_t Delta = C - T.Offset;
      if (Delta > 0)
        Peels.Back =
            std::max(Peels.Back, (Delta + T.Scale - 1) / T.Scale);
      else if (Delta < 0)
        Peels.Front =
            std::max(Peels.Front, (-Delta + T.Scale - 1) / T.Scale);
    }
  }
}

void Lowerer::scanBlockForPeels(const Block &B, const Stmt &Loop,
                                PeelAmounts &Peels) {
  for (const StmtPtr &S : B) {
    if (S->Lhs)
      scanForPeels(*S->Lhs, Loop, Peels);
    if (S->Rhs)
      scanForPeels(*S->Rhs, Loop, Peels);
    if (S->Cond)
      scanForPeels(*S->Cond, Loop, Peels);
    if (S->Lb)
      scanForPeels(*S->Lb, Loop, Peels);
    if (S->Ub)
      scanForPeels(*S->Ub, Loop, Peels);
    for (const ExprPtr &A : S->Args)
      scanForPeels(*A, Loop, Peels);
    scanBlockForPeels(S->Body, Loop, Peels);
    scanBlockForPeels(S->Then, Loop, Peels);
    scanBlockForPeels(S->Else, Loop, Peels);
  }
}

Lowerer::PeelAmounts Lowerer::computePeels(const Stmt &Loop) {
  PeelAmounts Peels;
  scanBlockForPeels(Loop.Body, Loop, Peels);
  return Peels;
}

//===----------------------------------------------------------------------===//
// Reference lowering
//===----------------------------------------------------------------------===//

Lowerer::ActiveTile *Lowerer::findContext(const ArraySymbol *A,
                                          unsigned Dim, const Expr &Sub,
                                          int64_t *Delta) {
  for (size_t I = Tiles.size(); I-- > 0;) {
    ActiveTile &T = Tiles[I];
    if (!compatibleDim(T.Tile->Array, T.Tile->Dim, A, Dim))
      continue;
    int64_t S, C;
    if (!extractLinear(Sub, T.IndVar, S, C))
      continue;
    if (S != T.Tile->Scale)
      continue;
    int64_t D = C - T.Tile->Offset;
    if (T.Tile->Kind != dist::DistKind::Block && D != 0)
      continue; // Only block portions tolerate offsets (via peeling).
    *Delta = D;
    return &T;
  }
  return nullptr;
}

ExprPtr Lowerer::buildNaiveOwner(ArraySymbol *A, unsigned Dim,
                                 const Expr &Sub, bool MemoQueries) {
  auto Q = [&](DistQueryKind K) {
    return MemoQueries ? memoQuery(K, A, Dim) : queryE(K, A, Dim);
  };
  ExprPtr E0 = addConstE(cloneExpr(Sub), -1); // 0-based element.
  switch (A->Dist.Dims[Dim].Kind) {
  case dist::DistKind::Block:
    return divE(std::move(E0), Q(DistQueryKind::BlockSize));
  case dist::DistKind::Cyclic:
    return modE(std::move(E0), Q(DistQueryKind::NumProcs));
  case dist::DistKind::BlockCyclic:
    return modE(divE(std::move(E0), Q(DistQueryKind::Chunk)),
                Q(DistQueryKind::NumProcs));
  case dist::DistKind::None:
    break;
  }
  return litE(0);
}

ExprPtr Lowerer::buildNaiveLocal(ArraySymbol *A, unsigned Dim,
                                 ExprPtr E0, bool MemoQueries) {
  auto Q = [&](DistQueryKind K) {
    return MemoQueries ? memoQuery(K, A, Dim) : queryE(K, A, Dim);
  };
  switch (A->Dist.Dims[Dim].Kind) {
  case dist::DistKind::None:
    return E0;
  case dist::DistKind::Block:
    return modE(std::move(E0), Q(DistQueryKind::BlockSize));
  case dist::DistKind::Cyclic:
    return divE(std::move(E0), Q(DistQueryKind::NumProcs));
  case dist::DistKind::BlockCyclic: {
    // (e / (k*P)) * k + e mod k.
    ExprPtr KP = mulE(Q(DistQueryKind::Chunk),
                      Q(DistQueryKind::NumProcs));
    ExprPtr Row = divE(cloneExpr(*E0), std::move(KP));
    ExprPtr InChunk = modE(std::move(E0), Q(DistQueryKind::Chunk));
    return addE(mulE(std::move(Row), Q(DistQueryKind::Chunk)),
                std::move(InChunk));
  }
  }
  return litE(0);
}

ScalarSymbol *Lowerer::inductionTempFor(ActiveTile &T,
                                        const Stmt *OwnerLoop) {
  if (T.InductionTemp)
    return T.InductionTemp;

  // Per-iteration advance of the local offset ("local_index =
  // local_index + 1" in the paper's generated code).  Block portions
  // advance Scale*step elements per iteration; cyclic portions advance
  // Scale (the generated loop step is P); cyclic(k) chunks advance
  // Scale within the chunk (unit user step).
  int64_t Advance = T.Tile->Scale;
  if (T.Tile->Kind == dist::DistKind::Block) {
    int64_t StepLit = 0;
    if (!constEvalInt(*OwnerLoop->Step, StepLit))
      return nullptr; // Symbolic step: caller falls back to the formula.
    Advance = T.Tile->Scale * StepLit;
  }

  // The temp lives in the scope of the loop that established the
  // context: initialized before that loop, advanced once per one of
  // its iterations.  (Inner scopes requesting an outer dimension's
  // temp must not capture it.)
  LoopScope *Owner = nullptr;
  for (LoopScope &S : Scopes)
    if (S.Loop == T.OwnerLoop)
      Owner = &S;
  assert(Owner && "induction temp outside its owner loop's scope");
  LoopScope &Scope = *Owner;
  ScalarSymbol *Temp = Proc.addTemp("lidx", ScalarType::I64);

  // Initial value: the naive local offset of the first iteration's
  // element, e = Scale*Lb + Offset (computed once, before the loop --
  // this is where the remaining div/mod lives, paper Section 7.1).
  ExprPtr E0 = addConstE(
      mulConstE(cloneExpr(*OwnerLoop->Lb), T.Tile->Scale),
      T.Tile->Offset - 1);
  ExprPtr Init = buildNaiveLocal(T.Tile->Array, T.Tile->Dim,
                                 std::move(E0), /*MemoQueries=*/true);
  Scope.PreStmts.push_back(makeAssign(useE(Temp), std::move(Init)));

  Scope.IncrStmts.push_back(
      makeAssign(useE(Temp), addConstE(useE(Temp), Advance)));
  T.InductionTemp = Temp;
  return Temp;
}

ExprPtr Lowerer::buildPortionElem(Expr &Ref) {
  ArraySymbol *A = Ref.Array;
  unsigned Rank = A->rank();
  assert(Ref.Ops.size() == Rank && "rank mismatch survived sema");

  // Cell linearization over distributed dimensions, in dimension order.
  ExprPtr Cell;
  ExprPtr Stride;
  bool AllCoordsFromContext = true;
  for (unsigned D = 0; D < Rank; ++D) {
    if (!A->Dist.Dims[D].isDistributed())
      continue;
    int64_t Delta = 0;
    ActiveTile *Ctx = findContext(A, D, *Ref.Ops[D], &Delta);
    ExprPtr Coord;
    if (Ctx) {
      Coord = useE(Ctx->Tile->ProcVar);
    } else {
      AllCoordsFromContext = false;
      Coord = cseSubexpr(buildNaiveOwner(A, D, *Ref.Ops[D]), "own");
    }
    ExprPtr Term = Stride ? mulE(std::move(Coord), cloneExpr(*Stride))
                          : std::move(Coord);
    Cell = Cell ? addE(std::move(Cell), std::move(Term))
                : std::move(Term);
    ExprPtr P = memoQuery(DistQueryKind::NumProcs, A, D);
    Stride = Stride ? hoistInvariant(
                          mulE(std::move(Stride), std::move(P)), "cstr")
                    : std::move(P);
  }
  assert(Cell && "reshaped array with no distributed dimension");

  // Local linearization over all dimensions.
  ExprPtr Local;
  ExprPtr PStride;
  for (unsigned D = 0; D < Rank; ++D) {
    int64_t Delta = 0;
    ActiveTile *Ctx = A->Dist.Dims[D].isDistributed()
                          ? findContext(A, D, *Ref.Ops[D], &Delta)
                          : nullptr;
    ExprPtr LocalD;
    if (!A->Dist.Dims[D].isDistributed()) {
      LocalD = addConstE(cloneExpr(*Ref.Ops[D]), -1);
    } else if (Ctx && Ctx->Tile->Kind == dist::DistKind::Block) {
      // Strength-reduced local offset; Delta shifts neighbour
      // references within the portion (peeling keeps them in range).
      if (ScalarSymbol *Temp = inductionTempFor(*Ctx, Ctx->OwnerLoop)) {
        LocalD = addConstE(useE(Temp), Delta);
      } else {
        // local = e - 1 - p*b  (symbolic-step fallback).
        LocalD = subE(addConstE(cloneExpr(*Ref.Ops[D]), -1),
                      mulE(useE(Ctx->Tile->ProcVar),
                           memoQuery(DistQueryKind::BlockSize, A, D)));
      }
    } else if (Ctx) {
      // Cyclic / cyclic(k): strength-reduced induction temp.
      LocalD = useE(inductionTempFor(*Ctx, Ctx->OwnerLoop));
    } else {
      LocalD = cseSubexpr(
          buildNaiveLocal(A, D, addConstE(cloneExpr(*Ref.Ops[D]), -1)),
          "loc");
    }
    ExprPtr Term = PStride
                       ? mulE(std::move(LocalD), cloneExpr(*PStride))
                       : std::move(LocalD);
    Local = Local ? addE(std::move(Local), std::move(Term))
                  : std::move(Term);
    ExprPtr PE = memoQuery(DistQueryKind::PortionExtent, A, D);
    PStride = PStride
                  ? hoistInvariant(
                        mulE(std::move(PStride), std::move(PE)), "pstr")
                  : std::move(PE);
  }

  auto PElem = std::make_unique<Expr>(ExprKind::PortionElem);
  PElem->Type = Ref.Type;
  PElem->Array = A;

  // Hoist the indirect portion-pointer load when the cell is invariant
  // within the current tiled loop (Section 7.2).
  if (Level == ReshapeOptLevel::Full && AllCoordsFromContext &&
      !Scopes.empty()) {
    std::string Key = A->Name + "|" + printExpr(*Cell);
    LoopScope &Scope = Scopes.back();
    auto It = Scope.HoistCache.find(Key);
    ScalarSymbol *BaseTemp;
    if (It != Scope.HoistCache.end()) {
      BaseTemp = It->second;
    } else {
      BaseTemp = Proc.addTemp("pbase", ScalarType::I64);
      auto Ptr = std::make_unique<Expr>(ExprKind::PortionPtr);
      Ptr->Type = ScalarType::I64;
      Ptr->Array = A;
      Ptr->Ops.push_back(cloneExpr(*Cell));
      Scope.PreStmts.push_back(
          makeAssign(useE(BaseTemp), std::move(Ptr)));
      Scope.HoistCache.emplace(Key, BaseTemp);
    }
    PElem->Scalar = BaseTemp;
  }

  PElem->Ops.push_back(std::move(Cell));
  PElem->Ops.push_back(std::move(Local));
  return PElem;
}

} // namespace

Error dsm::xform::lowerReshapedRefs(Procedure &P, ReshapeOptLevel Level) {
  return Lowerer(P, Level).run();
}
