//===- serve/Client.cpp - dsm_serve client with retry/backoff --------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::serve;

using Clock = std::chrono::steady_clock;

Error Client::connect() {
  auto S = support::Socket::connectTo(Opts.Host, Opts.Port,
                                      Opts.ConnectTimeoutMs);
  if (!S)
    return S.takeError();
  Sock = std::move(*S);
  Sock.setReadTimeout(Opts.ReadTimeoutMs);
  return Error::success();
}

Expected<Response> Client::call(const Request &R) {
  if (!Sock.valid())
    if (Error E = connect())
      return E;

  Request Send = R;
  if (Send.Id == 0)
    Send.Id = NextId++;
  if (Error E = Sock.writeFrame(encodeRequest(Send))) {
    Sock.close();
    return E;
  }

  std::string Payload;
  support::FrameStatus FS = Sock.readFrame(Payload);
  if (FS != support::FrameStatus::Ok) {
    Sock.close();
    return Error::make(std::string("response frame: ") +
                       support::frameStatusName(FS));
  }
  auto Resp = decodeResponse(Payload);
  if (!Resp) {
    Sock.close();
    return Resp.takeError();
  }
  return Resp;
}

int64_t Client::backoffMs(int Attempt, int64_t ServerHintMs) {
  int64_t Base;
  if (ServerHintMs > 0) {
    Base = ServerHintMs;
  } else {
    Base = Opts.BaseBackoffMs << std::min(Attempt, 16);
    Base = std::min(Base, Opts.MaxBackoffMs);
  }
  // Full jitter in [Base/2, Base]: desynchronizes a fleet of clients
  // that were all shed by the same queue-full instant.
  if (Base <= 1)
    return Base;
  return Base / 2 + Jitter.nextInRange(0, Base - Base / 2);
}

Expected<Response> Client::callWithRetry(const Request &R,
                                         CallTrace *Trace) {
  CallTrace Local;
  CallTrace &T = Trace ? *Trace : Local;
  T = CallTrace();

  const bool HasDeadline = R.DeadlineMs > 0;
  const Clock::time_point Deadline =
      HasDeadline ? Clock::now() + std::chrono::milliseconds(R.DeadlineMs)
                  : Clock::time_point::max();

  Error LastErr = Error::success();
  Status LastShed = Status::Overloaded;
  for (int Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
    Request Send = R;
    if (HasDeadline) {
      auto RemainMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Deadline - Clock::now())
                          .count();
      if (RemainMs <= 0)
        break;
      // Propagate the REMAINING budget, not the original, so the
      // server's queue cancellation reflects this client's true
      // patience on every attempt.
      Send.DeadlineMs = RemainMs;
    }

    ++T.Attempts;
    auto Resp = call(Send);
    int64_t HintMs = 0;
    if (!Resp) {
      LastErr = Resp.takeError();
      ++T.TransportRetries;
    } else if (isRetryable(Resp->St)) {
      LastShed = Resp->St;
      LastErr = Error::make("server answered " +
                            std::string(statusName(Resp->St)) +
                            (Resp->ErrorMsg.empty() ? ""
                                                    : ": " + Resp->ErrorMsg));
      ++T.Sheds;
      HintMs = Resp->RetryAfterMs;
    } else {
      return Resp;
    }

    if (Attempt == Opts.MaxRetries)
      break;
    int64_t SleepMs = backoffMs(Attempt, HintMs);
    if (HasDeadline) {
      auto RemainMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Deadline - Clock::now())
                          .count();
      if (RemainMs <= 0)
        break;
      SleepMs = std::min<int64_t>(SleepMs, RemainMs);
    }
    if (SleepMs > 0) {
      T.BackoffMs += static_cast<double>(SleepMs);
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    }
  }

  if (HasDeadline && Clock::now() >= Deadline) {
    // The budget died before the server said yes: report it the same
    // way the server would, so callers see one taxonomy.
    Response Out;
    Out.Id = R.Id;
    Out.St = Status::DeadlineExceeded;
    Out.ErrorMsg = formatString(
        "client-side deadline of %lld ms exhausted after %d attempt(s)",
        (long long)R.DeadlineMs, T.Attempts);
    return Out;
  }
  (void)LastShed;
  return Error::make("request failed after " + std::to_string(T.Attempts) +
                     " attempt(s): " + LastErr.str());
}
