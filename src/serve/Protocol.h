//===- serve/Protocol.h - dsm_serve wire protocol ---------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dsm_serve wire protocol (DESIGN.md Section 15): length-prefixed
/// frames (support/Socket.h) each carrying one JSON object.  Requests
/// name an op; every request gets exactly one response whose "status"
/// comes from a closed error taxonomy:
///
///   ok                the op succeeded; result fields are present
///   bad_request       the frame was unparseable or semantically
///                     invalid; do not retry unchanged
///   error             the op ran and failed (compile error, run
///                     error); do not retry unchanged
///   overloaded        the admission queue or the per-client budget is
///                     full; retry after retry_after_ms
///   deadline_exceeded the request's deadline_ms elapsed before the
///                     server could finish it; the work was cancelled
///   shutting_down     the server is draining; connect elsewhere/later
///
/// Results carry simulated cycles, the counters string, and %.17g
/// checksums, so a wire result can be compared bit-for-bit against a
/// direct in-process dsm::run (the serve tests and dsm_loadgen do).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SERVE_PROTOCOL_H
#define DSM_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "session/Session.h"
#include "support/Json.h"

namespace dsm::serve {

/// Response status taxonomy.  Retryable: Overloaded, ShuttingDown
/// (elsewhere), and transport loss; never BadRequest or Err.
enum class Status {
  Ok,
  BadRequest,
  Err,
  Overloaded,
  DeadlineExceeded,
  ShuttingDown,
};

const char *statusName(Status S);
bool parseStatus(const std::string &Name, Status &Out);

/// True for outcomes a client may retry without changing the request.
inline bool isRetryable(Status S) {
  return S == Status::Overloaded || S == Status::ShuttingDown;
}

enum class Op { Ping, Compile, Run, Stats };

const char *opName(Op O);

/// One decoded request.  Compile carries sources/options only; Run
/// additionally carries the execution parameters.
struct Request {
  Op Kind = Op::Ping;
  uint64_t Id = 0;
  /// Relative deadline; 0 = none.  The server cancels queued work
  /// whose deadline has passed and answers deadline_exceeded.
  int64_t DeadlineMs = 0;
  std::string Label;

  std::vector<SourceFile> Sources;
  CompileOptions COpts;

  int Procs = 8;
  int Threads = 1;
  std::string Policy = "first-touch";
  std::string Machine = "scaled";
  std::string Engine = "auto";
  bool Metrics = false;
  bool ArgChecks = false;
  std::vector<std::string> ChecksumArrays;
};

/// Decodes a frame payload.  A false-y result means bad_request; the
/// Error message is safe to echo to the peer.
Expected<Request> decodeRequest(const std::string &Payload);

/// Encodes \p R as a frame payload (client side).
std::string encodeRequest(const Request &R);

/// Builds the session-layer run request for \p R (resolving policy /
/// machine / engine names); the program handle is attached by the
/// caller after the shared-cache compile.
Error toRunRequest(const Request &R, session::RunRequest &Out);

/// One response.  Result fields are meaningful when St == Ok and the
/// request was a Run.
struct Response {
  uint64_t Id = 0;
  Status St = Status::Ok;
  std::string ErrorMsg;
  /// Backoff hint for Overloaded (clients honor it; see serve/Client).
  int64_t RetryAfterMs = 0;

  bool HasResult = false;
  uint64_t WallCycles = 0;
  uint64_t TimedCycles = 0;
  uint64_t RedistributeCycles = 0;
  /// Redistribution-planner accounting (runtime::RedistReport field
  /// names prefixed "redist_" on the wire); all zero when the program
  /// never redistributes.
  uint64_t RedistPagesNaive = 0;
  uint64_t RedistPagesPlanned = 0;
  uint64_t RedistRounds = 0;
  uint64_t RedistPeakScratch = 0;
  int RedistNewProcs = 0; ///< Last onto(p') resize; 0 = none.
  unsigned Epochs = 0;
  unsigned ThreadedEpochs = 0;
  /// numa::Counters::str() of the run -- the wire bit-identity oracle.
  std::string Counters;
  /// fault::FaultCounters::str() when any fault fired, else empty.
  std::string Faults;
  double HostSeconds = 0.0;
  /// Milliseconds the request waited in the admission queue.
  double QueueMs = 0.0;
  /// (array, plain, weighted) checksums, %.17g round-tripped.
  struct Checksum {
    std::string Array;
    double Sum = 0.0;
    double Weighted = 0.0;
  };
  std::vector<Checksum> Checksums;

  /// Compile: whether the shared cache already had the program.
  bool CacheHit = false;

  /// Stats: the server's stats object as a JSON document (carried on
  /// the wire as an escaped string so it round-trips verbatim).
  std::string StatsJson;
};

std::string encodeResponse(const Response &R);
Expected<Response> decodeResponse(const std::string &Payload);

} // namespace dsm::serve

#endif // DSM_SERVE_PROTOCOL_H
