//===- serve/Server.h - Fault-tolerant dsm_serve daemon ---------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running network service over the session layer (DESIGN.md
/// Section 15): per-client connections share one server-side program
/// cache, run requests execute on a bounded worker pool behind a
/// bounded admission queue, and robustness is the contract:
///
///  * Admission control: when the queue (or a client's own outstanding
///    budget) is full, requests are shed immediately with `overloaded`
///    and a retry_after_ms hint -- the server never buffers unbounded
///    work and never stalls the connection.
///  * Deadlines: a run whose deadline_ms elapses while queued is
///    cancelled and answered `deadline_exceeded`; started work is
///    never interrupted (results stay deterministic).
///  * Hostile input: malformed, oversize, truncated, or trickled
///    frames get `bad_request` or a dropped connection -- never a
///    crash, never a wedged acceptor (each connection has its own
///    reader thread, so one misbehaving peer cannot starve others).
///  * Graceful drain: requestDrain() stops accepting and admitting,
///    waitDrained() delivers every in-flight result, unblocks idle
///    readers, joins every thread, and flushes stats -- SIGTERM in the
///    dsm_serve tool maps to exactly this pair.
///
/// The server's slow paths carry DSM_BUGGIFY hooks (serve_accept_stall,
/// serve_frame_stall, serve_admit_shed, serve_drain_stall) so the
/// chaos-swarm methodology extends to the service: all four are
/// host-only and correctness-preserving (a forced shed is recovered by
/// client retry; stalls only widen race windows).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SERVE_SERVER_H
#define DSM_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/Buggify.h"
#include "serve/Protocol.h"
#include "session/Session.h"
#include "support/Socket.h"

namespace dsm::serve {

struct ServerOptions {
  /// TCP port (loopback only); 0 binds an ephemeral port, readable
  /// from Server::port() after start().
  int Port = 0;
  /// Worker threads executing run requests; 0 resolves like
  /// SessionOptions::Workers (min(hardware_concurrency, 8)).
  int Workers = 0;
  /// Bound on run requests waiting for a worker; a full queue sheds
  /// with `overloaded` + retry_after_ms.
  size_t QueueDepth = 64;
  /// Per-connection bound on outstanding (queued + running) requests:
  /// one greedy client saturates its own budget, not the queue.
  size_t MaxClientRequests = 16;
  /// Cap on one frame's payload; oversize length prefixes are refused
  /// without allocating.
  uint32_t MaxFrameBytes = support::DefaultMaxFrameBytes;
  /// Cap on concurrent connections; excess accepts are answered with
  /// an `overloaded` frame and closed.
  size_t MaxConnections = 128;
  /// LRU bound for the shared compile cache (0 = unbounded).
  size_t MaxCachedPrograms = 0;
  /// Per-request JSONL event log path (empty = off).
  std::string EventsPath;
  /// Arms the serve DSM_BUGGIFY hooks (not owned; may be null).
  fault::Buggify *Chaos = nullptr;

  /// Resolves Workers <= 0 from DSM_SERVE_WORKERS, then like the
  /// session layer.
  static ServerOptions fromEnv(ServerOptions Base);
  Error validate() const;
};

/// Monotonic counters; every request ends in exactly one outcome
/// bucket (the loadgen acceptance check sums them).
struct ServerStats {
  uint64_t Accepted = 0;        ///< Connections accepted.
  uint64_t ConnRejected = 0;    ///< Connections shed at the cap.
  uint64_t Requests = 0;        ///< Frames decoded into requests.
  uint64_t Ok = 0;
  uint64_t RunErrors = 0;       ///< Compile/run failures (status=error).
  uint64_t BadFrames = 0;       ///< Torn/oversize/zero-length frames.
  uint64_t BadRequests = 0;     ///< Undecodable or invalid requests.
  uint64_t Overloaded = 0;      ///< Shed at admission.
  uint64_t DeadlineExceeded = 0;
  uint64_t ShedShuttingDown = 0;
  uint64_t Cancelled = 0;       ///< Queued work whose client vanished.
  uint64_t QueuePeak = 0;
  session::CacheStats Cache;
  std::string json() const;
};

/// One dsm_serve instance.  Thread-safe: start() once, then
/// requestDrain()/stats() from any thread; waitDrained() (or the
/// destructor) completes shutdown.
class Server {
public:
  explicit Server(ServerOptions Opts = {});
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the accept loop and worker pool.
  /// Returns a false-y Error on success.
  Error start();

  /// The bound port (valid after a successful start()).
  int port() const { return BoundPort; }

  const ServerOptions &options() const { return Opts; }

  /// Stops accepting connections and admitting new work; in-flight
  /// requests keep running.  Async and idempotent.
  void requestDrain();

  /// Blocks until every in-flight result is delivered, every thread
  /// joined, and the event log flushed.  Idempotent.
  void waitDrained();

  bool draining() const {
    return Draining.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

private:
  struct Conn;
  struct Task;

  void acceptLoop();
  void connLoop(std::shared_ptr<Conn> C);
  void workerLoop();
  void handleFrame(const std::shared_ptr<Conn> &C,
                   const std::string &Payload);
  void handleRun(const std::shared_ptr<Conn> &C, Request R);
  void reply(const std::shared_ptr<Conn> &C, const Response &R);
  void event(const std::shared_ptr<Conn> &C, uint64_t Id,
             const char *OpName, const std::string &Label, Status St,
             double QueueMs, double RunMs);
  int64_t retryAfterMsLocked() const;

  ServerOptions Opts;
  session::Session Sess;
  support::Listener Listen;
  int BoundPort = 0;
  bool Started = false;

  std::atomic<bool> Draining{false};
  std::atomic<bool> DrainComplete{false};

  std::thread Acceptor;
  std::vector<std::thread> Workers;

  mutable std::mutex ConnMu;
  std::vector<std::shared_ptr<Conn>> LiveConns;
  std::vector<std::thread> ConnThreads;
  uint64_t NextConnId = 1;

  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;  ///< Workers wait for tasks.
  std::condition_variable IdleCv;   ///< Drain waits for quiescence.
  std::deque<Task> Queue;
  size_t RunningTasks = 0;
  bool StopWorkers = false;
  /// EWMA of run service time, feeding retry_after_ms.
  double ServiceEwmaMs = 0.0;

  mutable std::mutex StatsMu;
  ServerStats Counters;

  std::mutex EventsMu;
  std::FILE *Events = nullptr;

  std::mutex DrainMu; ///< Serializes waitDrained callers.
};

} // namespace dsm::serve

#endif // DSM_SERVE_SERVER_H
