//===- serve/Protocol.cpp - dsm_serve wire protocol ------------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstdio>

#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::serve;

const char *serve::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::BadRequest:
    return "bad_request";
  case Status::Err:
    return "error";
  case Status::Overloaded:
    return "overloaded";
  case Status::DeadlineExceeded:
    return "deadline_exceeded";
  case Status::ShuttingDown:
    return "shutting_down";
  }
  return "?";
}

bool serve::parseStatus(const std::string &Name, Status &Out) {
  for (Status S :
       {Status::Ok, Status::BadRequest, Status::Err, Status::Overloaded,
        Status::DeadlineExceeded, Status::ShuttingDown})
    if (Name == statusName(S)) {
      Out = S;
      return true;
    }
  return false;
}

const char *serve::opName(Op O) {
  switch (O) {
  case Op::Ping:
    return "ping";
  case Op::Compile:
    return "compile";
  case Op::Run:
    return "run";
  case Op::Stats:
    return "stats";
  }
  return "?";
}

static bool parseOp(const std::string &Name, Op &Out) {
  for (Op O : {Op::Ping, Op::Compile, Op::Run, Op::Stats})
    if (Name == opName(O)) {
      Out = O;
      return true;
    }
  return false;
}

static Error parseCompileOptions(const json::Value &V,
                                 CompileOptions &Out) {
  if (V.isNull())
    return Error::success();
  if (!V.isObject())
    return Error::make("'options' must be an object");
  if (const json::Value *T = V.find("transform"))
    Out.Transform = T->asBool(true);
  if (const json::Value *P = V.find("parallelize"))
    Out.Xform.Parallelize = P->asBool(true);
  if (const json::Value *F = V.find("fp_divmod"))
    Out.Xform.FpDivMod = F->asBool(true);
  if (const json::Value *L = V.find("opt_level")) {
    const std::string &S = L->asString();
    if (S == "none")
      Out.Xform.Level = xform::ReshapeOptLevel::None;
    else if (S == "tile-peel")
      Out.Xform.Level = xform::ReshapeOptLevel::TilePeel;
    else if (S == "full" || S.empty())
      Out.Xform.Level = xform::ReshapeOptLevel::Full;
    else
      return Error::make("unknown opt_level '" + S + "'");
  }
  return Error::success();
}

static const char *optLevelName(xform::ReshapeOptLevel L) {
  switch (L) {
  case xform::ReshapeOptLevel::None:
    return "none";
  case xform::ReshapeOptLevel::TilePeel:
    return "tile-peel";
  case xform::ReshapeOptLevel::Full:
    return "full";
  }
  return "full";
}

Expected<Request> serve::decodeRequest(const std::string &Payload) {
  auto Doc = json::parse(Payload, "<frame>");
  if (!Doc)
    return Error(Doc.error());
  const json::Value &V = *Doc;
  if (!V.isObject())
    return Error::make("request frame must be a JSON object");

  Request R;
  const std::string &OpStr = V["op"].asString();
  if (!parseOp(OpStr, R.Kind))
    return Error::make(OpStr.empty() ? "request has no 'op'"
                                     : "unknown op '" + OpStr + "'");
  R.Id = static_cast<uint64_t>(V["id"].asInt(0));
  R.DeadlineMs = V["deadline_ms"].asInt(0);
  if (R.DeadlineMs < 0)
    return Error::make("deadline_ms must be >= 0");
  R.Label = V["label"].asString();

  if (R.Kind == Op::Ping || R.Kind == Op::Stats)
    return R;

  const json::Value &Sources = V["sources"];
  if (!Sources.isArray() || Sources.array().empty())
    return Error::make("'" + OpStr +
                       "' needs a non-empty 'sources' array");
  for (const json::Value &S : Sources.array()) {
    if (!S.isObject() || !S["text"].isString())
      return Error::make(
          "source entries must be {name, text} objects (the wire "
          "protocol never reads server-side paths)");
    std::string Name = S["name"].asString();
    if (Name.empty())
      Name = "source" + std::to_string(R.Sources.size()) + ".f";
    R.Sources.push_back({std::move(Name), S["text"].asString()});
  }
  if (Error E = parseCompileOptions(V["options"], R.COpts))
    return E;

  if (R.Kind == Op::Run) {
    if (const json::Value *P = V.find("procs"))
      R.Procs = static_cast<int>(P->asInt(8));
    if (const json::Value *T = V.find("threads"))
      R.Threads = static_cast<int>(T->asInt(1));
    if (const json::Value *P = V.find("policy"))
      R.Policy = P->asString();
    if (const json::Value *M = V.find("machine"))
      R.Machine = M->asString();
    if (const json::Value *E = V.find("engine"))
      R.Engine = E->asString();
    R.Metrics = V["metrics"].asBool(false);
    R.ArgChecks = V["arg_checks"].asBool(false);
    const json::Value &CS = V["checksum"];
    if (CS.isString()) {
      R.ChecksumArrays.push_back(CS.asString());
    } else if (CS.isArray()) {
      for (const json::Value &A : CS.array())
        R.ChecksumArrays.push_back(A.asString());
    }
    // Validate the named configurations at decode time so a typo is a
    // bad_request, not a queued job that fails later.
    session::RunRequest Ignored;
    if (Error E = toRunRequest(R, Ignored))
      return E;
  }
  return R;
}

std::string serve::encodeRequest(const Request &R) {
  std::string Out = formatString(
      "{\"op\":\"%s\",\"id\":%llu,\"deadline_ms\":%lld", opName(R.Kind),
      static_cast<unsigned long long>(R.Id),
      static_cast<long long>(R.DeadlineMs));
  if (!R.Label.empty())
    Out += ",\"label\":\"" + json::escape(R.Label) + "\"";
  if (R.Kind == Op::Compile || R.Kind == Op::Run) {
    Out += ",\"sources\":[";
    for (size_t I = 0; I < R.Sources.size(); ++I)
      Out += formatString("%s{\"name\":\"%s\",\"text\":\"%s\"}",
                          I ? "," : "",
                          json::escape(R.Sources[I].Name).c_str(),
                          json::escape(R.Sources[I].Text).c_str());
    Out += "]";
    Out += formatString(
        ",\"options\":{\"transform\":%s,\"parallelize\":%s,"
        "\"fp_divmod\":%s,\"opt_level\":\"%s\"}",
        R.COpts.Transform ? "true" : "false",
        R.COpts.Xform.Parallelize ? "true" : "false",
        R.COpts.Xform.FpDivMod ? "true" : "false",
        optLevelName(R.COpts.Xform.Level));
  }
  if (R.Kind == Op::Run) {
    Out += formatString(
        ",\"procs\":%d,\"threads\":%d,\"policy\":\"%s\","
        "\"machine\":\"%s\",\"engine\":\"%s\",\"metrics\":%s,"
        "\"arg_checks\":%s",
        R.Procs, R.Threads, json::escape(R.Policy).c_str(),
        json::escape(R.Machine).c_str(),
        json::escape(R.Engine).c_str(), R.Metrics ? "true" : "false",
        R.ArgChecks ? "true" : "false");
    Out += ",\"checksum\":[";
    for (size_t I = 0; I < R.ChecksumArrays.size(); ++I)
      Out += formatString(
          "%s\"%s\"", I ? "," : "",
          json::escape(R.ChecksumArrays[I]).c_str());
    Out += "]";
  }
  Out += "}";
  return Out;
}

Error serve::toRunRequest(const Request &R, session::RunRequest &Out) {
  Out.Label = R.Label;
  Out.Opts.NumProcs = R.Procs;
  Out.Opts.HostThreads = R.Threads > 0 ? R.Threads : 1;
  Out.Opts.CollectMetrics = R.Metrics;
  Out.Opts.RuntimeArgChecks = R.ArgChecks;
  Out.ChecksumArrays = R.ChecksumArrays;

  if (R.Policy == "first-touch")
    Out.Opts.DefaultPolicy = numa::PlacementPolicy::FirstTouch;
  else if (R.Policy == "round-robin")
    Out.Opts.DefaultPolicy = numa::PlacementPolicy::RoundRobin;
  else
    return Error::make("unknown policy '" + R.Policy + "'");

  if (R.Machine == "scaled")
    Out.Machine = numa::MachineConfig::scaledOrigin();
  else if (R.Machine == "origin2000")
    Out.Machine = numa::MachineConfig::origin2000();
  else
    return Error::make("unknown machine '" + R.Machine + "'");

  using EngineKind = exec::RunOptions::EngineKind;
  if (R.Engine == "interp")
    Out.Opts.Engine = EngineKind::Interp;
  else if (R.Engine == "bytecode")
    Out.Opts.Engine = EngineKind::Bytecode;
  else if (R.Engine == "bytecode-nofuse")
    Out.Opts.Engine = EngineKind::BytecodeNoFuse;
  else if (R.Engine == "bytecode-norunbatch")
    Out.Opts.Engine = EngineKind::BytecodeNoRunBatch;
  else if (R.Engine == "auto" || R.Engine.empty())
    Out.Opts.Engine = EngineKind::Auto;
  else
    return Error::make("unknown engine '" + R.Engine + "'");

  if (R.Procs < 1 || R.Procs > Out.Machine.numProcs())
    return Error::make(formatString(
        "procs must be in 1..%d for machine '%s'",
        Out.Machine.numProcs(), R.Machine.c_str()));
  return Error::success();
}

std::string serve::encodeResponse(const Response &R) {
  std::string Out = formatString(
      "{\"id\":%llu,\"status\":\"%s\"",
      static_cast<unsigned long long>(R.Id), statusName(R.St));
  if (!R.ErrorMsg.empty())
    Out += ",\"error\":\"" + json::escape(R.ErrorMsg) + "\"";
  if (R.RetryAfterMs > 0)
    Out += formatString(",\"retry_after_ms\":%lld",
                        static_cast<long long>(R.RetryAfterMs));
  // Escaped-string transport: the parser has no serializer, so the
  // stats object rides as a string and round-trips verbatim.
  if (R.St == Status::Ok && !R.StatsJson.empty())
    Out += ",\"stats\":\"" + json::escape(R.StatsJson) + "\"";
  if (R.St == Status::Ok && R.CacheHit)
    Out += ",\"cache_hit\":true";
  // Top-level (not result-gated): deadline_exceeded answers also
  // report how long the request sat in the queue.
  if (R.QueueMs > 0.0)
    Out += formatString(",\"queue_ms\":%.3f", R.QueueMs);
  if (R.HasResult) {
    Out += formatString(
        ",\"wall_cycles\":%llu,\"timed_cycles\":%llu,"
        "\"redistribute_cycles\":%llu,\"epochs\":%u,"
        "\"threaded_epochs\":%u,\"host_seconds\":%.6f,"
        "\"counters\":\"%s\"",
        static_cast<unsigned long long>(R.WallCycles),
        static_cast<unsigned long long>(R.TimedCycles),
        static_cast<unsigned long long>(R.RedistributeCycles),
        R.Epochs, R.ThreadedEpochs, R.HostSeconds,
        json::escape(R.Counters).c_str());
    // Planner accounting rides along only when the run redistributed,
    // keeping redistribute-free responses unchanged.
    if (R.RedistPagesNaive || R.RedistPagesPlanned || R.RedistRounds)
      Out += formatString(
          ",\"redist_pages_naive\":%llu,\"redist_pages_planned\":%llu,"
          "\"redist_rounds\":%llu,\"redist_peak_scratch\":%llu",
          static_cast<unsigned long long>(R.RedistPagesNaive),
          static_cast<unsigned long long>(R.RedistPagesPlanned),
          static_cast<unsigned long long>(R.RedistRounds),
          static_cast<unsigned long long>(R.RedistPeakScratch));
    if (R.RedistNewProcs)
      Out += formatString(",\"redist_new_procs\":%d", R.RedistNewProcs);
    if (!R.Faults.empty())
      Out += ",\"faults\":\"" + json::escape(R.Faults) + "\"";
    Out += ",\"checksums\":[";
    for (size_t I = 0; I < R.Checksums.size(); ++I)
      Out += formatString(
          "%s{\"array\":\"%s\",\"sum\":%.17g,\"weighted\":%.17g}",
          I ? "," : "", json::escape(R.Checksums[I].Array).c_str(),
          R.Checksums[I].Sum, R.Checksums[I].Weighted);
    Out += "]";
  }
  Out += "}";
  return Out;
}

Expected<Response> serve::decodeResponse(const std::string &Payload) {
  auto Doc = json::parse(Payload, "<frame>");
  if (!Doc)
    return Error(Doc.error());
  const json::Value &V = *Doc;
  if (!V.isObject())
    return Error::make("response frame must be a JSON object");

  Response R;
  R.Id = static_cast<uint64_t>(V["id"].asInt(0));
  const std::string &St = V["status"].asString();
  if (!parseStatus(St, R.St))
    return Error::make(St.empty() ? "response has no 'status'"
                                  : "unknown status '" + St + "'");
  R.ErrorMsg = V["error"].asString();
  R.RetryAfterMs = V["retry_after_ms"].asInt(0);
  R.CacheHit = V["cache_hit"].asBool(false);
  R.StatsJson = V["stats"].asString();
  R.QueueMs = V["queue_ms"].asNumber(0.0);
  if (const json::Value *W = V.find("wall_cycles")) {
    R.HasResult = true;
    R.WallCycles = static_cast<uint64_t>(W->asInt(0));
    R.TimedCycles = static_cast<uint64_t>(V["timed_cycles"].asInt(0));
    R.RedistributeCycles =
        static_cast<uint64_t>(V["redistribute_cycles"].asInt(0));
    R.RedistPagesNaive =
        static_cast<uint64_t>(V["redist_pages_naive"].asInt(0));
    R.RedistPagesPlanned =
        static_cast<uint64_t>(V["redist_pages_planned"].asInt(0));
    R.RedistRounds = static_cast<uint64_t>(V["redist_rounds"].asInt(0));
    R.RedistPeakScratch =
        static_cast<uint64_t>(V["redist_peak_scratch"].asInt(0));
    R.RedistNewProcs =
        static_cast<int>(V["redist_new_procs"].asInt(0));
    R.Epochs = static_cast<unsigned>(V["epochs"].asInt(0));
    R.ThreadedEpochs =
        static_cast<unsigned>(V["threaded_epochs"].asInt(0));
    R.HostSeconds = V["host_seconds"].asNumber(0.0);
    R.Counters = V["counters"].asString();
    R.Faults = V["faults"].asString();
    for (const json::Value &C : V["checksums"].array())
      R.Checksums.push_back({C["array"].asString(),
                             C["sum"].asNumber(0.0),
                             C["weighted"].asNumber(0.0)});
  }
  return R;
}
