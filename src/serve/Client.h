//===- serve/Client.h - dsm_serve client with retry/backoff -----*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the dsm_serve protocol: one connection, blocking
/// request/response calls, and a retry policy that encodes the error
/// taxonomy's contract:
///
///  * `overloaded` / `shutting_down` and transport loss are retried
///    with jittered exponential backoff; an explicit retry_after_ms
///    hint from the server overrides the exponential schedule.
///  * `bad_request`, `error`, and `deadline_exceeded` are never
///    retried -- resending an invalid or expired request unchanged
///    cannot succeed.
///  * A request deadline bounds the WHOLE retry loop: each attempt
///    carries the remaining budget on the wire (so the server's queue
///    cancellation stays meaningful), and when the budget is gone the
///    client reports deadline_exceeded itself rather than retrying
///    forever.
///
/// Backoff jitter comes from a seeded SplitMix64 so loadgen runs are
/// reproducible: same seed, same retry schedule.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_SERVE_CLIENT_H
#define DSM_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/Protocol.h"
#include "support/Rng.h"
#include "support/Socket.h"

namespace dsm::serve {

struct ClientOptions {
  std::string Host = "127.0.0.1";
  int Port = 0;
  int ConnectTimeoutMs = 5000;
  /// Bounds each response wait; covers queueing + the run itself.
  int ReadTimeoutMs = 120000;
  /// Attempts beyond the first for retryable outcomes.
  int MaxRetries = 8;
  int64_t BaseBackoffMs = 10;
  int64_t MaxBackoffMs = 2000;
  /// Seeds the backoff jitter (reproducible retry schedules).
  uint64_t JitterSeed = 1;
};

/// Outcome bookkeeping a caller (dsm_loadgen) reads after each call.
struct CallTrace {
  int Attempts = 0;      ///< Total send attempts (>= 1).
  int Sheds = 0;         ///< overloaded/shutting_down answers seen.
  int TransportRetries = 0; ///< Reconnects after transport loss.
  double BackoffMs = 0.0;   ///< Total time slept between attempts.
};

/// One connection to a dsm_serve daemon.  Not thread-safe: loadgen
/// gives each worker thread its own Client.
class Client {
public:
  explicit Client(ClientOptions Opts) : Opts(std::move(Opts)),
                                        Jitter(this->Opts.JitterSeed) {}

  const ClientOptions &options() const { return Opts; }
  bool connected() const { return Sock.valid(); }

  /// Connects (or reconnects).  call()/callWithRetry() connect lazily,
  /// so this is only needed to probe reachability.
  Error connect();

  void close() { Sock.close(); }

  /// One request / one response, no retries.  Transport failures
  /// invalidate the connection (the next call reconnects).
  Expected<Response> call(const Request &R);

  /// call() wrapped in the retry policy described in the file header.
  /// \p Trace (optional) receives attempt/shed/backoff accounting.
  Expected<Response> callWithRetry(const Request &R,
                                   CallTrace *Trace = nullptr);

private:
  int64_t backoffMs(int Attempt, int64_t ServerHintMs);

  ClientOptions Opts;
  support::Socket Sock;
  SplitMix64 Jitter;
  uint64_t NextId = 1;
};

} // namespace dsm::serve

#endif // DSM_SERVE_CLIENT_H
