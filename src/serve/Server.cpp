//===- serve/Server.cpp - Fault-tolerant dsm_serve daemon ------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "support/Json.h"
#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::serve;

using Clock = std::chrono::steady_clock;

static double msBetween(Clock::time_point A, Clock::time_point B) {
  return std::chrono::duration<double, std::milli>(B - A).count();
}

//===----------------------------------------------------------------------===//
// Options / stats
//===----------------------------------------------------------------------===//

ServerOptions ServerOptions::fromEnv(ServerOptions Base) {
  if (Base.Workers <= 0) {
    if (const char *E = std::getenv("DSM_SERVE_WORKERS"))
      Base.Workers = std::atoi(E);
    if (Base.Workers <= 0) {
      unsigned HW = std::thread::hardware_concurrency();
      Base.Workers = static_cast<int>(std::min(HW ? HW : 1u, 8u));
    }
  }
  return Base;
}

Error ServerOptions::validate() const {
  if (Port < 0 || Port > 65535)
    return Error::make("serve: bad port " + std::to_string(Port));
  if (Workers < 0)
    return Error::make("serve: negative worker count");
  if (QueueDepth == 0)
    return Error::make("serve: queue depth must be >= 1");
  if (MaxClientRequests == 0)
    return Error::make("serve: per-client budget must be >= 1");
  if (MaxConnections == 0)
    return Error::make("serve: connection cap must be >= 1");
  if (MaxFrameBytes < 1024)
    return Error::make("serve: frame cap below 1 KiB is unusable");
  return Error::success();
}

std::string ServerStats::json() const {
  std::string S = "{";
  S += formatString("\"accepted\":%llu,",
                             (unsigned long long)Accepted);
  S += formatString("\"conn_rejected\":%llu,",
                             (unsigned long long)ConnRejected);
  S += formatString("\"requests\":%llu,",
                             (unsigned long long)Requests);
  S += formatString("\"ok\":%llu,", (unsigned long long)Ok);
  S += formatString("\"run_errors\":%llu,",
                             (unsigned long long)RunErrors);
  S += formatString("\"bad_frames\":%llu,",
                             (unsigned long long)BadFrames);
  S += formatString("\"bad_requests\":%llu,",
                             (unsigned long long)BadRequests);
  S += formatString("\"overloaded\":%llu,",
                             (unsigned long long)Overloaded);
  S += formatString("\"deadline_exceeded\":%llu,",
                             (unsigned long long)DeadlineExceeded);
  S += formatString("\"shed_shutting_down\":%llu,",
                             (unsigned long long)ShedShuttingDown);
  S += formatString("\"cancelled\":%llu,",
                             (unsigned long long)Cancelled);
  S += formatString("\"queue_peak\":%llu,",
                             (unsigned long long)QueuePeak);
  S += formatString(
      "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"programs\":%llu}",
      (unsigned long long)Cache.Hits, (unsigned long long)Cache.Misses,
      (unsigned long long)Cache.Evictions,
      (unsigned long long)Cache.Programs);
  S += "}";
  return S;
}

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

/// One accepted connection.  Shared between its reader thread, any
/// queued tasks that will answer on it, and LiveConns (for drain).
struct Server::Conn {
  support::Socket Sock;
  uint64_t Id = 0;
  /// Serializes frame writes: the reader thread (protocol errors, ping,
  /// stats, compile) and workers (run results) both reply here.
  std::mutex WriteMu;
  /// Set when the reader exits (peer gone) or a write fails.  Queued
  /// tasks for a gone client are dropped, and RunRequest::Cancel points
  /// here so the batch layer skips them too.
  std::atomic<bool> Gone{false};
  /// Queued + running requests for this client (admission budget).
  std::atomic<size_t> Outstanding{0};
};

/// One admitted run request waiting for (or on) a worker.
struct Server::Task {
  std::shared_ptr<Conn> C;
  Request R;                 ///< Wire request (id, label, checksums).
  session::RunRequest RReq;  ///< Resolved job, program attached.
  Clock::time_point Enqueued;
  Clock::time_point Deadline; ///< time_point::max() when none.
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

static session::SessionOptions sessionOptionsFor(const ServerOptions &O) {
  session::SessionOptions S;
  // The server's own worker pool replaces the session's batch pool.
  S.Workers = 1;
  S.MaxCachedPrograms = O.MaxCachedPrograms;
  S.Chaos = O.Chaos;
  return S;
}

Server::Server(ServerOptions InOpts)
    : Opts(ServerOptions::fromEnv(std::move(InOpts))),
      Sess(sessionOptionsFor(Opts)) {}

Server::~Server() {
  requestDrain();
  waitDrained();
}

Error Server::start() {
  if (Error E = Opts.validate())
    return E;
  if (Started)
    return Error::make("serve: start() called twice");

  if (!Opts.EventsPath.empty()) {
    Events = std::fopen(Opts.EventsPath.c_str(), "w");
    if (!Events)
      return Error::make("serve: cannot open events log '" +
                         Opts.EventsPath + "'");
  }

  auto L = support::Listener::listenOn(Opts.Port);
  if (!L) {
    if (Events) {
      std::fclose(Events);
      Events = nullptr;
    }
    return L.takeError();
  }
  Listen = std::move(*L);
  BoundPort = Listen.port();

  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  for (int I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  return Error::success();
}

void Server::requestDrain() {
  Draining.store(true, std::memory_order_release);
}

void Server::waitDrained() {
  std::lock_guard<std::mutex> DL(DrainMu);
  if (!Started || DrainComplete.load(std::memory_order_acquire))
    return;
  Draining.store(true, std::memory_order_release);

  // 1. Stop accepting: the accept loop exits on its next <=100ms poll
  //    tick; only then is the listener fd closed (never from under a
  //    live poll).
  if (Acceptor.joinable())
    Acceptor.join();
  Listen.close();

  if (DSM_BUGGIFY(Opts.Chaos, "serve_drain_stall", 0))
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

  // 2. Quiesce the queue: connections can no longer admit work
  //    (handleRun sheds with shutting_down once Draining is set), so
  //    waiting for empty+idle delivers every in-flight result.
  {
    std::unique_lock<std::mutex> L(QueueMu);
    IdleCv.wait(L, [this] { return Queue.empty() && RunningTasks == 0; });
    StopWorkers = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();

  // 3. Unblock idle readers.  Snapshot under the lock, shut down
  //    outside it: shutdownBoth() only half-closes, the fd stays owned
  //    by the Conn until its thread unwinds, so there is no
  //    close-vs-recv race.
  std::vector<std::shared_ptr<Conn>> Snapshot;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Snapshot = LiveConns;
  }
  for (const std::shared_ptr<Conn> &C : Snapshot)
    C->Sock.shutdownBoth();

  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();

  // 4. Flush accounting.
  {
    std::lock_guard<std::mutex> L(EventsMu);
    if (Events) {
      std::fprintf(Events, "{\"event\":\"drained\",\"stats\":%s}\n",
                   stats().json().c_str());
      std::fclose(Events);
      Events = nullptr;
    }
  }
  DrainComplete.store(true, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats S;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    S = Counters;
  }
  S.Cache = Sess.cacheStats();
  return S;
}

//===----------------------------------------------------------------------===//
// Accept / connection loops
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  while (!Draining.load(std::memory_order_acquire)) {
    auto S = Listen.acceptOnce(100);
    if (!S) {
      // Hard accept failure (fd limit, listener torn down): without a
      // listener the server can only finish what it has.
      S.takeError();
      break;
    }
    if (!S->valid())
      continue; // timeout tick; re-check Draining
    if (Draining.load(std::memory_order_acquire))
      break; // drop the late socket; its destructor closes it

    uint64_t Id;
    {
      std::lock_guard<std::mutex> L(ConnMu);
      Id = NextConnId++;
    }
    if (DSM_BUGGIFY(Opts.Chaos, "serve_accept_stall", Id))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));

    bool OverCap;
    {
      std::lock_guard<std::mutex> L(ConnMu);
      OverCap = LiveConns.size() >= Opts.MaxConnections;
      if (!OverCap) {
        auto C = std::make_shared<Conn>();
        C->Sock = std::move(*S);
        C->Id = Id;
        // A peer that floods requests but never reads responses must
        // not wedge a worker in send(): bound every write.
        C->Sock.setWriteTimeout(10000);
        LiveConns.push_back(C);
        ConnThreads.emplace_back([this, C] { connLoop(C); });
      }
    }
    if (OverCap) {
      // Best-effort shed frame outside ConnMu, then close.
      Response R;
      R.St = Status::Overloaded;
      R.ErrorMsg = "connection limit reached";
      R.RetryAfterMs = 100;
      support::Socket Sock = std::move(*S);
      Sock.setWriteTimeout(1000);
      (void)Sock.writeFrame(encodeResponse(R));
    }
    std::lock_guard<std::mutex> SL(StatsMu);
    if (OverCap)
      ++Counters.ConnRejected;
    else
      ++Counters.Accepted;
  }
}

void Server::connLoop(std::shared_ptr<Conn> C) {
  for (;;) {
    std::string Payload;
    support::FrameStatus FS = C->Sock.readFrame(Payload, Opts.MaxFrameBytes);
    if (FS == support::FrameStatus::Ok) {
      if (DSM_BUGGIFY(Opts.Chaos, "serve_frame_stall", C->Id))
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      handleFrame(C, Payload);
      continue;
    }
    if (FS == support::FrameStatus::Closed)
      break; // clean EOF at a frame boundary (or drain's shutdownBoth)
    if (FS == support::FrameStatus::Malformed) {
      // Zero-length prefix: the stream is still in sync; answer and
      // keep the connection.
      {
        std::lock_guard<std::mutex> SL(StatsMu);
        ++Counters.BadFrames;
      }
      Response R;
      R.St = Status::BadRequest;
      R.ErrorMsg = "zero-length frame";
      reply(C, R);
      continue;
    }
    // TooLarge: the prefix may be lying, so the stream cannot be
    // resynced -- answer once and drop the connection.  Truncated /
    // IoError: the peer is gone or hostile; just drop.
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.BadFrames;
    }
    if (FS == support::FrameStatus::TooLarge) {
      Response R;
      R.St = Status::BadRequest;
      R.ErrorMsg = formatString(
          "frame exceeds %u-byte cap", (unsigned)Opts.MaxFrameBytes);
      reply(C, R);
    }
    break;
  }

  // Mark the client gone first (workers drop its queued tasks), then
  // unlink from LiveConns.  The shared_ptr keeps the socket alive for
  // any task already holding it.
  C->Gone.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> L(ConnMu);
  LiveConns.erase(std::remove(LiveConns.begin(), LiveConns.end(), C),
                  LiveConns.end());
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

void Server::handleFrame(const std::shared_ptr<Conn> &C,
                         const std::string &Payload) {
  auto Req = decodeRequest(Payload);
  if (!Req) {
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.BadRequests;
    }
    Response R;
    R.St = Status::BadRequest;
    R.ErrorMsg = Req.takeError().str();
    reply(C, R);
    return;
  }
  {
    std::lock_guard<std::mutex> SL(StatsMu);
    ++Counters.Requests;
  }

  Request &Q = *Req;
  switch (Q.Kind) {
  case Op::Ping: {
    Response R;
    R.Id = Q.Id;
    R.St = Draining.load(std::memory_order_acquire) ? Status::ShuttingDown
                                                    : Status::Ok;
    if (R.St == Status::Ok) {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.Ok;
    } else {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.ShedShuttingDown;
    }
    reply(C, R);
    event(C, Q.Id, opName(Op::Ping), Q.Label, R.St, 0.0, 0.0);
    return;
  }
  case Op::Stats: {
    Response R;
    R.Id = Q.Id;
    R.St = Status::Ok;
    R.StatsJson = stats().json();
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.Ok;
    }
    reply(C, R);
    event(C, Q.Id, opName(Op::Stats), Q.Label, Status::Ok, 0.0, 0.0);
    return;
  }
  case Op::Compile: {
    Response R;
    R.Id = Q.Id;
    if (Draining.load(std::memory_order_acquire)) {
      R.St = Status::ShuttingDown;
      R.ErrorMsg = "server is draining";
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.ShedShuttingDown;
    } else {
      // Hit detection via the shared cache's miss counter: exact even
      // under concurrency is not required (it is advisory), but a
      // same-connection recompile is always reported correctly.
      uint64_t MissesBefore = Sess.cacheStats().Misses;
      auto Start = Clock::now();
      auto P = Sess.compile(Q.Sources, Q.COpts);
      R.QueueMs = msBetween(Start, Clock::now());
      if (!P) {
        R.St = Status::Err;
        R.ErrorMsg = P.takeError().str();
        std::lock_guard<std::mutex> SL(StatsMu);
        ++Counters.RunErrors;
      } else {
        R.St = Status::Ok;
        R.CacheHit = Sess.cacheStats().Misses == MissesBefore;
        std::lock_guard<std::mutex> SL(StatsMu);
        ++Counters.Ok;
      }
    }
    reply(C, R);
    event(C, Q.Id, opName(Op::Compile), Q.Label, R.St, 0.0, R.QueueMs);
    return;
  }
  case Op::Run:
    handleRun(C, std::move(Q));
    return;
  }
}

void Server::handleRun(const std::shared_ptr<Conn> &C, Request R) {
  Response Resp;
  Resp.Id = R.Id;

  if (Draining.load(std::memory_order_acquire)) {
    Resp.St = Status::ShuttingDown;
    Resp.ErrorMsg = "server is draining";
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.ShedShuttingDown;
    }
    reply(C, Resp);
    event(C, R.Id, opName(Op::Run), R.Label, Resp.St, 0.0, 0.0);
    return;
  }

  // Per-client budget first: one greedy client saturates its own
  // budget, never the shared queue.
  if (C->Outstanding.load(std::memory_order_acquire) >=
      Opts.MaxClientRequests) {
    Resp.St = Status::Overloaded;
    Resp.ErrorMsg = "per-client request budget exhausted";
    {
      std::lock_guard<std::mutex> L(QueueMu);
      Resp.RetryAfterMs = retryAfterMsLocked();
    }
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.Overloaded;
    }
    reply(C, Resp);
    event(C, R.Id, opName(Op::Run), R.Label, Resp.St, 0.0, 0.0);
    return;
  }

  Task T;
  T.C = C;
  if (Error E = toRunRequest(R, T.RReq)) {
    Resp.St = Status::BadRequest;
    Resp.ErrorMsg = E.str();
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.BadRequests;
    }
    reply(C, Resp);
    event(C, R.Id, opName(Op::Run), R.Label, Resp.St, 0.0, 0.0);
    return;
  }

  // Compile (or fetch) on the connection thread so the worker pool
  // only ever runs engines; the shared cache makes the hot path a
  // lookup.
  auto P = Sess.compile(R.Sources, R.COpts);
  if (!P) {
    Resp.St = Status::Err;
    Resp.ErrorMsg = P.takeError().str();
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Counters.RunErrors;
    }
    reply(C, Resp);
    event(C, R.Id, opName(Op::Run), R.Label, Resp.St, 0.0, 0.0);
    return;
  }
  T.RReq.Program = *P;
  T.RReq.Cancel = &C->Gone;
  T.Enqueued = Clock::now();
  T.Deadline = R.DeadlineMs > 0
                   ? T.Enqueued + std::chrono::milliseconds(R.DeadlineMs)
                   : Clock::time_point::max();
  T.R = std::move(R);

  std::string Label = T.R.Label;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    // Re-check under the queue lock: once drain's quiescence wait is
    // armed, nothing may slip into the queue (a slow compile above
    // could otherwise outlive the first Draining check).
    if (Draining.load(std::memory_order_acquire)) {
      Resp.St = Status::ShuttingDown;
      Resp.ErrorMsg = "server is draining";
    } else if (Queue.size() >= Opts.QueueDepth ||
               DSM_BUGGIFY(Opts.Chaos, "serve_admit_shed", T.R.Id)) {
      Resp.St = Status::Overloaded;
      Resp.ErrorMsg = "admission queue full";
      Resp.RetryAfterMs = retryAfterMsLocked();
    } else {
      Queue.push_back(std::move(T));
      C->Outstanding.fetch_add(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> SL(StatsMu);
      Counters.QueuePeak =
          std::max<uint64_t>(Counters.QueuePeak, Queue.size());
    }
  }
  if (Resp.St != Status::Ok) {
    {
      std::lock_guard<std::mutex> SL(StatsMu);
      if (Resp.St == Status::Overloaded)
        ++Counters.Overloaded;
      else
        ++Counters.ShedShuttingDown;
    }
    reply(C, Resp);
    event(C, Resp.Id, opName(Op::Run), Label, Resp.St, 0.0, 0.0);
    return;
  }
  QueueCv.notify_one();
}

void Server::workerLoop() {
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      QueueCv.wait(L, [this] { return StopWorkers || !Queue.empty(); });
      if (Queue.empty()) {
        if (StopWorkers)
          return;
        continue;
      }
      T = std::move(Queue.front());
      Queue.pop_front();
      ++RunningTasks;
    }

    auto Picked = Clock::now();
    double QueueMs = msBetween(T.Enqueued, Picked);
    Response Resp;
    Resp.Id = T.R.Id;
    Resp.QueueMs = QueueMs;
    double RunMs = 0.0;

    if (T.C->Gone.load(std::memory_order_acquire)) {
      // Client vanished while the request was queued: nothing to
      // answer; just account for the cancelled work.
      {
        std::lock_guard<std::mutex> SL(StatsMu);
        ++Counters.Cancelled;
      }
      Resp.St = Status::Err;
      Resp.ErrorMsg = "client disconnected";
    } else if (Picked > T.Deadline) {
      Resp.St = Status::DeadlineExceeded;
      Resp.ErrorMsg = formatString(
          "deadline of %lld ms elapsed after %.1f ms in queue",
          (long long)T.R.DeadlineMs, QueueMs);
      {
        std::lock_guard<std::mutex> SL(StatsMu);
        ++Counters.DeadlineExceeded;
      }
      reply(T.C, Resp);
    } else {
      session::JobResult JR = Sess.run(T.RReq);
      RunMs = msBetween(Picked, Clock::now());
      if (!JR.ok()) {
        // A run cancelled at pickup (client died between our Gone check
        // and the batch layer's) is accounting-only, like above.
        if (T.C->Gone.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> SL(StatsMu);
          ++Counters.Cancelled;
          Resp.St = Status::Err;
          Resp.ErrorMsg = "client disconnected";
        } else {
          Resp.St = Status::Err;
          Resp.ErrorMsg = JR.Err.str();
          {
            std::lock_guard<std::mutex> SL(StatsMu);
            ++Counters.RunErrors;
          }
          reply(T.C, Resp);
        }
      } else {
        const session::RunOutput &Out = *JR.Output;
        Resp.St = Status::Ok;
        Resp.HasResult = true;
        Resp.WallCycles = Out.Result.WallCycles;
        Resp.TimedCycles = Out.Result.TimedCycles;
        Resp.RedistributeCycles = Out.Result.RedistributeCycles;
        Resp.RedistPagesNaive = Out.Result.Redist.NaivePageMoves;
        Resp.RedistPagesPlanned = Out.Result.Redist.PlannedPageMoves;
        Resp.RedistRounds = Out.Result.Redist.Rounds;
        Resp.RedistPeakScratch = Out.Result.Redist.PeakScratchFrames;
        Resp.RedistNewProcs = Out.Result.Redist.NewProcs;
        Resp.Epochs = Out.Result.ParallelRegions;
        Resp.ThreadedEpochs = Out.Result.ThreadedEpochs;
        Resp.Counters = Out.Result.Counters.str();
        if (Out.Result.Faults.any())
          Resp.Faults = Out.Result.Faults.str();
        Resp.HostSeconds = Out.HostSeconds;
        for (size_t I = 0; I < Out.Checksums.size(); ++I) {
          Response::Checksum CS;
          CS.Array = I < T.R.ChecksumArrays.size()
                         ? T.R.ChecksumArrays[I]
                         : std::string();
          CS.Sum = Out.Checksums[I].first;
          CS.Weighted = Out.Checksums[I].second;
          Resp.Checksums.push_back(std::move(CS));
        }
        {
          std::lock_guard<std::mutex> SL(StatsMu);
          ++Counters.Ok;
        }
        reply(T.C, Resp);
      }
    }

    event(T.C, T.R.Id, opName(Op::Run), T.R.Label, Resp.St, QueueMs,
          RunMs);
    T.C->Outstanding.fetch_sub(1, std::memory_order_acq_rel);

    {
      std::lock_guard<std::mutex> L(QueueMu);
      --RunningTasks;
      if (RunMs > 0.0)
        ServiceEwmaMs = ServiceEwmaMs > 0.0
                            ? 0.8 * ServiceEwmaMs + 0.2 * RunMs
                            : RunMs;
    }
    IdleCv.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

void Server::reply(const std::shared_ptr<Conn> &C, const Response &R) {
  if (C->Gone.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> L(C->WriteMu);
  if (Error E = C->Sock.writeFrame(encodeResponse(R))) {
    // Peer stopped reading (or vanished): mark it gone and wake the
    // reader so the connection unwinds instead of wedging on writes.
    (void)E.str();
    C->Gone.store(true, std::memory_order_release);
    C->Sock.shutdownBoth();
  }
}

void Server::event(const std::shared_ptr<Conn> &C, uint64_t Id,
                   const char *OpName, const std::string &Label,
                   Status St, double QueueMs, double RunMs) {
  std::lock_guard<std::mutex> L(EventsMu);
  if (!Events)
    return;
  std::fprintf(Events,
               "{\"conn\":%llu,\"id\":%llu,\"op\":\"%s\","
               "\"label\":\"%s\",\"status\":\"%s\",\"queue_ms\":%.3f,"
               "\"run_ms\":%.3f}\n",
               (unsigned long long)C->Id, (unsigned long long)Id, OpName,
               json::escape(Label).c_str(), statusName(St),
               QueueMs, RunMs);
}

int64_t Server::retryAfterMsLocked() const {
  // Queue-depth * service-time / workers: how long until a retry would
  // plausibly find a free slot.  Clamped so clients neither spin nor
  // stall.
  double Base = ServiceEwmaMs > 0.0 ? ServiceEwmaMs : 25.0;
  double Depth = static_cast<double>(Queue.size() + RunningTasks + 1);
  double W = static_cast<double>(std::max(Opts.Workers, 1));
  double Ms = Base * Depth / W;
  return static_cast<int64_t>(std::clamp(Ms, 5.0, 2000.0));
}
