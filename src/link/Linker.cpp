//===- link/Linker.cpp - Pre-linker and program resolution ----------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "link/Linker.h"

#include <deque>
#include <unordered_set>

#include "support/StringUtils.h"

using namespace dsm;
using namespace dsm::link;
using namespace dsm::ir;

//===----------------------------------------------------------------------===//
// Shadow files
//===----------------------------------------------------------------------===//

std::string dsm::link::signatureString(const ReshapeSignature &Sig) {
  std::string Out = "[";
  for (size_t I = 0; I < Sig.size(); ++I) {
    if (I)
      Out += ";";
    Out += Sig[I] ? Sig[I]->str() : "-";
  }
  Out += "]";
  return Out;
}

bool dsm::link::signaturesEqual(const ReshapeSignature &A,
                                const ReshapeSignature &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].has_value() != B[I].has_value())
      return false;
    if (A[I] && !(*A[I] == *B[I]))
      return false;
  }
  return true;
}

static ReshapeSignature signatureOfCall(const Stmt &Call) {
  ReshapeSignature Sig;
  for (const ExprPtr &Arg : Call.Args) {
    if (Arg->Kind == ExprKind::ArrayElem && Arg->Ops.empty() &&
        Arg->Array->isReshaped())
      Sig.push_back(Arg->Array->Dist);
    else
      Sig.push_back(std::nullopt);
  }
  return Sig;
}

static bool signatureTrivial(const ReshapeSignature &Sig) {
  for (const auto &S : Sig)
    if (S)
      return false;
  return true;
}

static ReshapeSignature signatureOfProcedure(const Procedure &P) {
  ReshapeSignature Sig;
  for (const FormalParam &F : P.Formals) {
    if (F.Array && F.Array->isReshaped())
      Sig.push_back(F.Array->Dist);
    else
      Sig.push_back(std::nullopt);
  }
  return Sig;
}

static void collectCalls(const Block &B,
                         std::vector<const Stmt *> &Calls) {
  for (const StmtPtr &S : B) {
    if (S->Kind == StmtKind::Call)
      Calls.push_back(S.get());
    collectCalls(S->Body, Calls);
    collectCalls(S->Then, Calls);
    collectCalls(S->Else, Calls);
  }
}

static void collectCallsMutable(Block &B, std::vector<Stmt *> &Calls) {
  for (StmtPtr &S : B) {
    if (S->Kind == StmtKind::Call)
      Calls.push_back(S.get());
    collectCallsMutable(S->Body, Calls);
    collectCallsMutable(S->Then, Calls);
    collectCallsMutable(S->Else, Calls);
  }
}

ShadowFile dsm::link::buildShadowFile(const ir::Module &M) {
  ShadowFile Shadow;
  Shadow.SourceName = M.SourceName;
  for (const auto &P : M.Procedures) {
    Shadow.Defs.push_back(
        ShadowDefEntry{P->Name, signatureOfProcedure(*P)});

    std::vector<const Stmt *> Calls;
    collectCalls(P->Body, Calls);
    for (const Stmt *C : Calls) {
      ReshapeSignature Sig = signatureOfCall(*C);
      if (!signatureTrivial(Sig))
        Shadow.Calls.push_back(ShadowCallEntry{P->Name, C->Callee, Sig});
    }

    for (const CommonDecl &D : P->Commons) {
      ShadowCommonEntry Entry;
      Entry.Procedure = P->Name;
      Entry.BlockName = D.BlockName;
      int64_t Offset = 0;
      for (const CommonMember &Member : D.Members) {
        if (Member.Scalar) {
          ++Offset;
          continue;
        }
        ShadowCommonEntry::Member Info;
        Info.Name = Member.Array->Name;
        Info.OffsetElems = Offset;
        int64_t Elems = 1;
        for (const ExprPtr &Dim : Member.Array->DimSizes) {
          int64_t V = 0;
          if (constEvalInt(*Dim, V)) {
            Info.Dims.push_back(V);
            Elems *= V;
          }
        }
        Info.Reshaped = Member.Array->isReshaped();
        if (Member.Array->HasDist)
          Info.Dist = Member.Array->Dist;
        Entry.Members.push_back(std::move(Info));
        Offset += Elems;
      }
      Shadow.Commons.push_back(std::move(Entry));
    }
  }
  return Shadow;
}

unsigned ShadowFile::removeRedundantRequests(
    const std::vector<const ShadowFile *> &AllShadows) {
  unsigned Removed = 0;
  std::vector<CloneRequest> Kept;
  for (CloneRequest &R : Requests) {
    bool StillCalled = false;
    for (const ShadowFile *S : AllShadows)
      for (const ShadowCallEntry &C : S->Calls)
        if (C.Callee == R.Procedure &&
            signaturesEqual(C.Signature, R.Signature))
          StillCalled = true;
    if (StillCalled)
      Kept.push_back(std::move(R));
    else
      ++Removed;
  }
  Requests = std::move(Kept);
  return Removed;
}

std::string ShadowFile::serialize() const {
  std::string Out = "shadow " + SourceName + "\n";
  for (const ShadowDefEntry &D : Defs)
    Out += "  def " + D.Procedure + " " + signatureString(D.Signature) +
           "\n";
  for (const ShadowCallEntry &C : Calls)
    Out += "  call " + C.Caller + " -> " + C.Callee + " " +
           signatureString(C.Signature) + "\n";
  for (const CloneRequest &R : Requests)
    Out += "  request " + R.Procedure + " " + signatureString(R.Signature) +
           " as " + R.CloneName + "\n";
  for (const ShadowCommonEntry &E : Commons) {
    Out += "  common /" + E.BlockName + "/ in " + E.Procedure + "\n";
    for (const auto &M : E.Members)
      Out += formatString("    %s at %lld%s\n", M.Name.c_str(),
                          static_cast<long long>(M.OffsetElems),
                          M.Reshaped ? (" " + M.Dist.str()).c_str() : "");
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Pre-linker
//===----------------------------------------------------------------------===//

namespace {

class PreLinker {
public:
  PreLinker(std::vector<std::unique_ptr<Module>> Modules)
      : Prog() {
    Prog.Modules = std::move(Modules);
  }

  Expected<Program> run() {
    resolveProcedures();
    if (Diags)
      return std::move(Diags);
    propagateReshapes();
    if (Diags)
      return std::move(Diags);
    layoutCommons();
    if (Diags)
      return std::move(Diags);
    return std::move(Prog);
  }

private:
  void resolveProcedures();
  void propagateReshapes();
  void layoutCommons();

  void error(const std::string &Message, const std::string &Where = "") {
    Diags.addError(Message, Where);
  }

  Program Prog;
  Error Diags;
  /// Clone bookkeeping: base procedure name of every instance.
  std::unordered_map<std::string, std::string> BaseNameOf;
  /// (base name + signature string) -> instance.
  std::unordered_map<std::string, Procedure *> Instances;
  /// Module owning each base procedure (clones are appended there).
  std::unordered_map<std::string, Module *> OwnerModule;
  unsigned CloneCounter = 0;
};

void PreLinker::resolveProcedures() {
  for (auto &M : Prog.Modules) {
    for (auto &P : M->Procedures) {
      auto [It, Inserted] = Prog.Procedures.try_emplace(P->Name, P.get());
      (void)It;
      if (!Inserted) {
        error("duplicate definition of '" + P->Name + "'", M->SourceName);
        continue;
      }
      BaseNameOf[P->Name] = P->Name;
      OwnerModule[P->Name] = M.get();
      if (P->IsMain) {
        if (Prog.Main)
          error("multiple main programs ('" + Prog.Main->Name + "' and '" +
                    P->Name + "')",
                M->SourceName);
        Prog.Main = P.get();
      }
    }
  }
  if (!Prog.Main)
    error("no main program unit");
}

void PreLinker::propagateReshapes() {
  // Seed the instance table with every defined procedure under its own
  // formal signature.
  for (auto &[Name, P] : Prog.Procedures)
    Instances[Name + signatureString(signatureOfProcedure(*P))] = P;

  std::deque<Procedure *> Work;
  for (auto &[Name, P] : Prog.Procedures)
    Work.push_back(P);

  while (!Work.empty()) {
    Procedure *Caller = Work.front();
    Work.pop_front();
    std::vector<Stmt *> Calls;
    collectCallsMutable(Caller->Body, Calls);
    for (Stmt *Call : Calls) {
      // dsm_* names are runtime-library entry points (timers etc.),
      // not user procedures.
      if (Call->Callee.rfind("dsm_", 0) == 0)
        continue;
      auto BaseIt = BaseNameOf.find(Call->Callee);
      if (BaseIt == BaseNameOf.end()) {
        error("call to undefined subroutine '" + Call->Callee + "' in '" +
              Caller->Name + "'");
        continue;
      }
      const std::string &Base = BaseIt->second;
      Procedure *BaseProc = Prog.Procedures[Base];
      if (Call->Args.size() != BaseProc->Formals.size()) {
        error(formatString(
            "call to '%s' in '%s' passes %zu arguments but it takes %zu",
            Base.c_str(), Caller->Name.c_str(), Call->Args.size(),
            BaseProc->Formals.size()));
        continue;
      }

      ReshapeSignature Sig = signatureOfCall(*Call);
      if (signatureTrivial(Sig) &&
          signatureTrivial(signatureOfProcedure(*BaseProc)))
        continue;

      std::string Key = Base + signatureString(Sig);
      auto InstIt = Instances.find(Key);
      if (InstIt != Instances.end()) {
        Call->Callee = InstIt->second->Name;
        continue;
      }

      // No instance: verify the signature can be applied, then clone
      // ("transparently reinvoking the compiler at link time").
      bool Ok = true;
      for (size_t I = 0; I < Sig.size(); ++I) {
        if (!Sig[I])
          continue;
        const FormalParam &F = BaseProc->Formals[I];
        if (!F.Array) {
          error(formatString(
              "call to '%s' in '%s' passes a reshaped array for scalar "
              "parameter %zu",
              Base.c_str(), Caller->Name.c_str(), I + 1));
          Ok = false;
          continue;
        }
        if (F.Array->HasDist && !(F.Array->Dist == *Sig[I])) {
          error(formatString(
              "call to '%s' in '%s': parameter '%s' is declared %s but "
              "receives a %s array",
              Base.c_str(), Caller->Name.c_str(), F.Array->Name.c_str(),
              F.Array->Dist.str().c_str(), Sig[I]->str().c_str()));
          Ok = false;
        }
        if (F.Array->rank() != Sig[I]->Dims.size()) {
          error(formatString(
              "call to '%s' in '%s': parameter '%s' has rank %u but the "
              "reshaped actual is distributed over %zu dimensions",
              Base.c_str(), Caller->Name.c_str(), F.Array->Name.c_str(),
              F.Array->rank(), Sig[I]->Dims.size()));
          Ok = false;
        }
      }
      if (!Ok)
        continue;

      std::string CloneName =
          formatString("%s.r%u", Base.c_str(), ++CloneCounter);
      std::unique_ptr<Procedure> Clone =
          cloneProcedure(*BaseProc, CloneName);
      for (size_t I = 0; I < Sig.size(); ++I) {
        if (!Sig[I])
          continue;
        ArraySymbol *Formal = Clone->Formals[I].Array;
        Formal->HasDist = true;
        Formal->Dist = *Sig[I];
      }
      Procedure *ClonePtr = Clone.get();
      Module *Owner = OwnerModule[Base];
      Owner->Procedures.push_back(std::move(Clone));
      Prog.Procedures[CloneName] = ClonePtr;
      BaseNameOf[CloneName] = Base;
      OwnerModule[CloneName] = Owner;
      Instances[Key] = ClonePtr;
      ++Prog.ClonesCreated;
      ++Prog.Recompilations;
      Call->Callee = CloneName;
      Work.push_back(ClonePtr);
    }
  }
}

void PreLinker::layoutCommons() {
  for (auto &M : Prog.Modules) {
    for (auto &P : M->Procedures) {
      for (const CommonDecl &D : P->Commons) {
        // Compute this declaration's member offsets.
        struct LocalMember {
          const CommonMember *Member;
          int64_t Offset;
          int64_t Elems;
          std::vector<int64_t> Dims;
        };
        std::vector<LocalMember> Locals;
        int64_t Offset = 0;
        for (const CommonMember &Member : D.Members) {
          LocalMember L;
          L.Member = &Member;
          L.Offset = Offset;
          L.Elems = 1;
          if (Member.Array) {
            for (const ExprPtr &Dim : Member.Array->DimSizes) {
              int64_t V = 0;
              if (!constEvalInt(*Dim, V)) {
                error("COMMON array '" + Member.Array->Name +
                          "' lacks constant bounds",
                      M->SourceName);
                V = 1;
              }
              L.Dims.push_back(V);
              L.Elems *= V;
            }
          }
          Offset += L.Elems;
          Locals.push_back(std::move(L));
        }

        auto [BlockIt, IsFirst] =
            Prog.Commons.try_emplace(D.BlockName);
        CommonInfo &Info = BlockIt->second;
        if (IsFirst) {
          Info.BlockName = D.BlockName;
          Info.TotalElems = Offset;
          for (const LocalMember &L : Locals) {
            if (!L.Member->Array)
              continue;
            CommonArrayInfo AI;
            AI.Name = L.Member->Array->Name;
            AI.OffsetElems = L.Offset;
            AI.Dims = L.Dims;
            AI.Elem = L.Member->Array->Elem;
            AI.HasDist = L.Member->Array->HasDist;
            AI.Dist = L.Member->Array->Dist;
            Info.Arrays.push_back(std::move(AI));
          }
        } else {
          if (Offset > Info.TotalElems)
            Info.TotalElems = Offset;
          // Link-time consistency check (paper Section 6): only blocks
          // containing reshaped arrays are checked, and every
          // declaration must agree on each reshaped member's offset,
          // shape, size, and distribution.
          bool CanonicalHasReshaped = false;
          for (const CommonArrayInfo &AI : Info.Arrays)
            CanonicalHasReshaped |= AI.HasDist && AI.Dist.Reshaped;
          bool LocalHasReshaped = false;
          for (const LocalMember &L : Locals)
            LocalHasReshaped |=
                L.Member->Array && L.Member->Array->isReshaped();
          if (CanonicalHasReshaped || LocalHasReshaped) {
            for (const CommonArrayInfo &AI : Info.Arrays) {
              if (!(AI.HasDist && AI.Dist.Reshaped))
                continue;
              const LocalMember *Match = nullptr;
              for (const LocalMember &L : Locals)
                if (L.Member->Array && L.Offset == AI.OffsetElems)
                  Match = &L;
              if (!Match || Match->Dims != AI.Dims ||
                  !Match->Member->Array->isReshaped() ||
                  !(Match->Member->Array->Dist == AI.Dist)) {
                error(formatString(
                    "inconsistent declarations of common block /%s/: "
                    "reshaped array '%s' at offset %lld must appear with "
                    "the same shape, size, and distribution in every "
                    "declaration (violated in '%s')",
                    D.BlockName.c_str(), AI.Name.c_str(),
                    static_cast<long long>(AI.OffsetElems),
                    P->Name.c_str()));
              }
            }
            for (const LocalMember &L : Locals) {
              if (!L.Member->Array || !L.Member->Array->isReshaped())
                continue;
              bool Found = false;
              for (const CommonArrayInfo &AI : Info.Arrays)
                if (AI.OffsetElems == L.Offset && AI.HasDist &&
                    AI.Dist.Reshaped)
                  Found = true;
              if (!Found)
                error(formatString(
                    "inconsistent declarations of common block /%s/: "
                    "'%s' declares reshaped array '%s' at offset %lld "
                    "which other declarations lay out differently",
                    D.BlockName.c_str(), P->Name.c_str(),
                    L.Member->Array->Name.c_str(),
                    static_cast<long long>(L.Offset)));
            }
          }
        }

        // Record slot bindings for the engine.
        for (const LocalMember &L : Locals) {
          if (L.Member->Array)
            Prog.CommonArraySlots[L.Member->Array] = {D.BlockName,
                                                      L.Offset};
          else
            Prog.CommonScalarSlots[L.Member->Scalar] = {D.BlockName,
                                                        L.Offset};
        }
      }
    }
  }
}

} // namespace

Expected<Program>
dsm::link::linkProgram(std::vector<std::unique_ptr<Module>> Modules) {
  PreLinker L(std::move(Modules));
  auto P = L.run();
  if (P)
    finalizeProgram(*P);
  return P;
}

//===----------------------------------------------------------------------===//
// Program finalization
//===----------------------------------------------------------------------===//
//
// Slot assignment used to happen inside the execution engine, which
// made Engine construction mutate the program -- impossible to share
// one compiled Program across concurrent engines.  It is a pure
// function of the (post-transform) IR, so it belongs to compile time.

namespace {

void assignTransSlotsExpr(Expr &E, int &NumTransSlots) {
  if (E.Kind == ExprKind::ArrayElem && E.Array &&
      E.Array->isReshaped() && !E.Ops.empty())
    E.TransSlot = NumTransSlots++;
  for (ExprPtr &Op : E.Ops)
    if (Op)
      assignTransSlotsExpr(*Op, NumTransSlots);
}

void assignTransSlotsBlock(Block &B, int &NumTransSlots) {
  for (StmtPtr &StPtr : B) {
    Stmt &St = *StPtr;
    for (ExprPtr *E :
         {&St.Lhs, &St.Rhs, &St.Lb, &St.Ub, &St.Step, &St.Cond})
      if (*E)
        assignTransSlotsExpr(**E, NumTransSlots);
    for (ExprPtr &E : St.ProcExtents)
      if (E)
        assignTransSlotsExpr(*E, NumTransSlots);
    for (ExprPtr &E : St.Args)
      if (E)
        assignTransSlotsExpr(*E, NumTransSlots);
    assignTransSlotsBlock(St.Body, NumTransSlots);
    assignTransSlotsBlock(St.Then, NumTransSlots);
    assignTransSlotsBlock(St.Else, NumTransSlots);
  }
}

} // namespace

void dsm::link::finalizeProgram(Program &Prog) {
  Prog.NumTransSlots = 0;
  for (auto &M : Prog.Modules) {
    for (auto &P : M->Procedures) {
      int Slot = 0;
      for (auto &Sym : P->Scalars)
        Sym->SlotIndex = Slot++;
      Slot = 0;
      for (auto &A : P->Arrays)
        A->SlotIndex = Slot++;
      assignTransSlotsBlock(P->Body, Prog.NumTransSlots);
    }
  }
  Prog.Finalized = true;
}
