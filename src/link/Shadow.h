//===- link/Shadow.h - Shadow-file records ----------------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow-file mechanism of the paper's Section 5.  For each source
/// file the compiler maintains a shadow file recording (a) every defined
/// subroutine with the distribute_reshape directives on its parameters,
/// (b) every call site passing a reshaped array as an argument, and
/// (c) every declaration of a COMMON block with the shape/size/
/// distribution of any reshaped members.  The pre-linker reads all
/// shadow files, matches invocations to definitions, inserts clone
/// requests for missing instances, and removes requests left redundant
/// by source changes.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_LINK_SHADOW_H
#define DSM_LINK_SHADOW_H

#include <optional>
#include <string>
#include <vector>

#include "dist/DistSpec.h"

namespace dsm::link {

/// The reshape signature of a procedure: one entry per formal, set when
/// that formal receives a whole reshaped array.
using ReshapeSignature = std::vector<std::optional<dist::DistSpec>>;

std::string signatureString(const ReshapeSignature &Sig);
bool signaturesEqual(const ReshapeSignature &A, const ReshapeSignature &B);

/// (a) A subroutine defined in this file.
struct ShadowDefEntry {
  std::string Procedure;
  ReshapeSignature Signature;
};

/// (b) A call in this file passing at least one reshaped array.
struct ShadowCallEntry {
  std::string Caller;
  std::string Callee;
  ReshapeSignature Signature;
};

/// A pre-linker request for a clone of Procedure with Signature.
struct CloneRequest {
  std::string Procedure;
  ReshapeSignature Signature;
  std::string CloneName;
};

/// (c) One declaration of a COMMON block, with reshaped-member info.
struct ShadowCommonEntry {
  std::string Procedure;
  std::string BlockName;
  struct Member {
    std::string Name;
    int64_t OffsetElems = 0;
    std::vector<int64_t> Dims;
    bool Reshaped = false;
    dist::DistSpec Dist;
  };
  std::vector<Member> Members;
};

/// The shadow file of one translation unit.
struct ShadowFile {
  std::string SourceName;
  std::vector<ShadowDefEntry> Defs;
  std::vector<ShadowCallEntry> Calls;
  std::vector<ShadowCommonEntry> Commons;
  std::vector<CloneRequest> Requests;

  /// Drops requests that no call in any shadow file still needs; returns
  /// how many were removed.  "We avoid unnecessary cloning by removing
  /// requests from the shadow file for each definition that does not
  /// have a matching call" (paper Section 5).
  unsigned removeRedundantRequests(
      const std::vector<const ShadowFile *> &AllShadows);

  /// Textual round-trip used by tests (the real system persists shadow
  /// files on disk next to object files).
  std::string serialize() const;
};

} // namespace dsm::link

#endif // DSM_LINK_SHADOW_H
