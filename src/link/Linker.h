//===- link/Linker.h - Pre-linker and program resolution --------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-linker of the paper's Section 5: it reads all object files'
/// shadow information, propagates distribute_reshape directives down the
/// call graph across separately compiled units, transparently clones
/// subroutines (one instance per distinct combination of incoming
/// reshaped distributions), removes redundant clone requests, and
/// performs the link-time COMMON-block consistency checks of Section 6.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_LINK_LINKER_H
#define DSM_LINK_LINKER_H

#include <memory>
#include <vector>

#include "link/Program.h"
#include "link/Shadow.h"
#include "support/Error.h"

namespace dsm::link {

/// Extracts the shadow-file records of one compiled module: defined
/// procedures with their reshape signatures, call sites that pass whole
/// reshaped arrays, and COMMON declarations with reshaped-member info.
ShadowFile buildShadowFile(const ir::Module &M);

/// Links the modules into a Program: resolves procedures, propagates
/// reshape directives (cloning as needed), and checks COMMON
/// consistency.  Consumes the modules.  The returned program is
/// finalized (see finalizeProgram); callers that transform it
/// afterwards must re-finalize.
Expected<Program>
linkProgram(std::vector<std::unique_ptr<ir::Module>> Modules);

/// Assigns frame slots to every scalar/array symbol and translation-
/// cache slots to every reshaped reference, then marks the program
/// Finalized.  Idempotent; must be re-run after any IR-rewriting pass
/// (the transform pipeline introduces new symbols and references).
/// After finalization the program is read-only to the execution
/// engine, which is what lets one compiled Program back many
/// concurrent runs.
void finalizeProgram(Program &Prog);

} // namespace dsm::link

#endif // DSM_LINK_LINKER_H
