//===- link/Program.h - Linked program representation -----------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of the pre-linker: all modules (with any clones created
/// during reshape-directive propagation), a resolved procedure table,
/// and the canonical layout of every COMMON block.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_LINK_PROGRAM_H
#define DSM_LINK_PROGRAM_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/Ir.h"

namespace dsm::link {

/// One-shot, thread-safe slot for a derived artifact a consumer builds
/// lazily from a finalized program (the bytecode engine caches its
/// compiled code here, so every engine sharing one ProgramHandle
/// compiles at most once).  Type-erased so link stays independent of
/// exec.  Moving a Program resets the slot; programs are only moved
/// during construction, before they are shared.
class ArtifactSlot {
public:
  ArtifactSlot() = default;
  ArtifactSlot(ArtifactSlot &&) noexcept {}
  ArtifactSlot &operator=(ArtifactSlot &&) noexcept {
    return *this;
  }

  /// Returns the cached artifact, building it first via \p Make if the
  /// slot is empty.  Concurrent callers block until the first build
  /// finishes and then share its result.
  template <typename MakeFn>
  std::shared_ptr<const void> getOrSet(MakeFn &&Make) const {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Ptr)
      Ptr = Make();
    return Ptr;
  }

private:
  mutable std::mutex Mu;
  mutable std::shared_ptr<const void> Ptr;
};

/// Canonical description of one array member of a COMMON block.
struct CommonArrayInfo {
  std::string Name;
  int64_t OffsetElems = 0;
  std::vector<int64_t> Dims;
  ir::ScalarType Elem = ir::ScalarType::F64;
  bool HasDist = false;
  dist::DistSpec Dist;
};

/// Canonical layout of one COMMON block (from its first declaration;
/// later declarations are checked for consistency when reshaped arrays
/// are involved, paper Section 6).
struct CommonInfo {
  std::string BlockName;
  int64_t TotalElems = 0;
  std::vector<CommonArrayInfo> Arrays;
};

/// A fully linked program, ready for optimization and execution.
struct Program {
  std::vector<std::unique_ptr<ir::Module>> Modules;
  ir::Procedure *Main = nullptr;
  std::unordered_map<std::string, ir::Procedure *> Procedures;
  std::unordered_map<std::string, CommonInfo> Commons;

  /// Binding of every procedure-local view of a COMMON member to its
  /// (block, element offset) slot.
  std::unordered_map<const ir::ArraySymbol *, std::pair<std::string, int64_t>>
      CommonArraySlots;
  std::unordered_map<const ir::ScalarSymbol *,
                     std::pair<std::string, int64_t>>
      CommonScalarSlots;

  /// Number of subroutine clones the pre-linker created (for tests and
  /// the cloning benchmark).
  unsigned ClonesCreated = 0;
  /// Number of times the pre-linker "re-invoked the compiler".
  unsigned Recompilations = 0;

  /// Set by finalizeProgram(): every scalar/array symbol has its frame
  /// slot and every reshaped reference its translation-cache slot.  A
  /// finalized program is immutable at run time, so one Program can be
  /// shared (const) by any number of concurrent engines.
  bool Finalized = false;
  /// Number of translation-cache slots finalizeProgram() handed out.
  int NumTransSlots = 0;

  /// Lazily built derived artifacts keyed to this program's finalized
  /// IR (currently the bytecode engine's compiled code).  Logically
  /// not part of the program, hence usable through const handles.
  ArtifactSlot EngineArtifacts;

  ir::Procedure *findProcedure(const std::string &Name) const {
    auto It = Procedures.find(Name);
    return It == Procedures.end() ? nullptr : It->second;
  }
};

} // namespace dsm::link

#endif // DSM_LINK_PROGRAM_H
