//===- numa/Observer.h - Memory-system event observer -----------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hook interface the memory system (and the runtime above it) invokes
/// on its *slow* paths: TLB misses, accesses that reach a home memory,
/// coherence invalidations, page faults, placements and migrations, and
/// per-processor pool growth.  MemorySystem holds a nullable pointer to
/// one observer; every call site is guarded by a single predicted null
/// check on an already-miss path, so an unobserved run pays nothing on
/// cache hits and one untaken branch per miss (the "zero cost when
/// disabled" contract of DESIGN.md Section 9, verified by
/// bench_obs_overhead).
///
/// All hooks fire on the engine's replay/serial path only -- never from
/// host worker threads -- so implementations need no locking.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_OBSERVER_H
#define DSM_NUMA_OBSERVER_H

#include <cstdint>

namespace dsm::numa {

/// Observer of simulated machine events.  Default implementations do
/// nothing so sinks override only what they consume.
class SimObserver {
public:
  virtual ~SimObserver() = default;

  /// A data-TLB miss by \p Proc translating \p Addr.
  virtual void onTlbMiss(int Proc, uint64_t Addr) {
    (void)Proc;
    (void)Addr;
  }

  /// An access that missed both caches and was served by the memory of
  /// \p HomeNode on behalf of \p Proc (running on \p ProcNode).
  virtual void onMemAccess(int Proc, int ProcNode, int HomeNode,
                           uint64_t Addr, bool IsWrite) {
    (void)Proc;
    (void)ProcNode;
    (void)HomeNode;
    (void)Addr;
    (void)IsWrite;
  }

  /// A write to \p Addr invalidated \p Count sharers' cached copies.
  virtual void onInvalidations(uint64_t Addr, unsigned Count) {
    (void)Addr;
    (void)Count;
  }

  /// Page \p VPage faulted in on \p Node under the default policy on
  /// behalf of \p Proc.
  virtual void onPageFault(uint64_t VPage, int Node, int Proc) {
    (void)VPage;
    (void)Node;
    (void)Proc;
  }

  /// Page \p VPage was explicitly placed (or re-placed) on \p Node;
  /// \p Colored marks cache-colored pool frames (reshaped portions).
  virtual void onPagePlace(uint64_t VPage, int Node, bool Colored) {
    (void)VPage;
    (void)Node;
    (void)Colored;
  }

  /// Page \p VPage migrated from \p FromNode to \p ToNode
  /// (c$redistribute remap).
  virtual void onPageMigrate(uint64_t VPage, int FromNode, int ToNode) {
    (void)VPage;
    (void)FromNode;
    (void)ToNode;
  }

  /// The runtime grew \p OwnerProc's portion pool by \p Bytes of memory
  /// local to \p Node.
  virtual void onPoolGrow(int OwnerProc, int Node, uint64_t Bytes) {
    (void)OwnerProc;
    (void)Node;
    (void)Bytes;
  }

  /// A fault was injected (or a fallback taken in reaction to one).
  /// \p Kind is a static string: "place_denied", "place_fallback",
  /// "migrate_denied", "migrate_retry", "latency_spike", "tlb_retry",
  /// "capacity_overflow", "unbacked_page", or "degraded_array".
  /// \p VPage / \p Node identify the affected page and node where
  /// meaningful (0 / -1 otherwise).  Fires only when a fault::Injector
  /// is attached or the machine degrades under true memory exhaustion;
  /// a healthy unfaulted run never reaches these call sites.
  virtual void onFaultInjected(const char *Kind, uint64_t VPage,
                               int Node) {
    (void)Kind;
    (void)VPage;
    (void)Node;
  }
};

} // namespace dsm::numa

#endif // DSM_NUMA_OBSERVER_H
