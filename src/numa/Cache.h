//===- numa/Cache.h - Set-associative cache model ---------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic set-associative, write-back, write-allocate cache with true
/// LRU replacement.  Used for both L1 (32 B lines) and L2 (128 B lines).
/// Addresses passed in may be virtual (L1) or physical (L2); the cache
/// itself is agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_CACHE_H
#define DSM_NUMA_CACHE_H

#include <cstdint>
#include <vector>

#include "numa/MachineConfig.h"

namespace dsm::numa {

/// Result of a cache probe-and-fill operation.
struct CacheAccessResult {
  bool Hit = false;
  bool Evicted = false;      ///< A valid line was evicted on miss fill.
  bool EvictedDirty = false; ///< ... and it was dirty (needs writeback).
  uint64_t EvictedLineAddr = 0;
};

/// Set-associative LRU cache.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  /// Probes for the line containing \p Addr; on miss, fills it, possibly
  /// evicting the LRU way.  \p IsWrite marks the line dirty on hit/fill.
  CacheAccessResult access(uint64_t Addr, bool IsWrite);

  /// Probes without filling or LRU update.
  bool contains(uint64_t Addr) const;

  /// Commits an access only on hit: identical to a hitting access()
  /// (clock tick, LRU stamp, dirty update) when the line is resident,
  /// returning true; on miss touches nothing and returns false so the
  /// caller can fall back to access(), whose tick then counts the one
  /// real access.  The strip-mined batch path pairs this with
  /// Tlb::accessMru to make the expected L1-hit case a single probe.
  bool accessIfHit(uint64_t Addr, bool IsWrite) {
    if (Way *W = findWay(Addr)) {
      ++Clock;
      W->LruStamp = Clock;
      W->Dirty |= IsWrite;
      return true;
    }
    return false;
  }

  /// Run-batched commit for the line containing \p Addr
  /// (MemorySystem::commitRun): stamps the line as if its most recent
  /// hit happened \p LastTick clock ticks after the current clock and
  /// ORs in the dirty bit, without advancing the clock -- the caller
  /// stamps every line a window touched (in ascending tick order, so
  /// colliding stamps resolve exactly as the scalar sequence would)
  /// and then advances the shared clock once via advanceClock().
  /// Equivalent to interleaved accessIfHit calls at those positions.
  /// Returns false, touching nothing, if the line is not resident.
  bool accessRun(uint64_t Addr, uint32_t LastTick, bool IsWrite) {
    if (Way *W = findWay(Addr)) {
      W->LruStamp = Clock + LastTick;
      W->Dirty |= IsWrite;
      return true;
    }
    return false;
  }

  /// Second half of the accessRun protocol: one clock advance covering
  /// every access of a committed window.
  void advanceClock(uint32_t Ticks) { Clock += Ticks; }

  /// Opaque handle to the way currently holding \p Addr's line, or
  /// nullptr if not resident.  Ways never move, so the handle stays
  /// usable across later accesses; accessVia revalidates it by tag on
  /// every use (run-continuation memo, MemorySystem::runAccess).
  void *wayHandle(uint64_t Addr) { return findWay(Addr); }

  /// accessIfHit through a cached wayHandle: if the handle still holds
  /// \p Addr's line, commits the hit (clock tick, LRU stamp, dirty
  /// update) and returns true; if the way was since evicted or refilled
  /// with another line, touches nothing and returns false.  The line
  /// may then still be resident in a sibling way -- the caller's
  /// fallback (the scalar batchAccess pipeline) handles that case
  /// identically, just without the shortcut.  \p Addr must lie on the
  /// same line the handle was obtained for (the tag only disambiguates
  /// within that line's set).
  bool accessVia(void *Handle, uint64_t Addr, bool IsWrite) {
    Way *W = static_cast<Way *>(Handle);
    if (!W || !W->Valid || W->Tag != tagOf(Addr))
      return false;
    ++Clock;
    W->LruStamp = Clock;
    W->Dirty |= IsWrite;
    return true;
  }

  /// Removes the line containing \p Addr if present.  Returns true if the
  /// invalidated line was dirty.
  bool invalidate(uint64_t Addr);

  /// Clears the dirty bit of the line containing \p Addr (coherence
  /// downgrade M->S).  Returns true if the line was present.
  bool cleanLine(uint64_t Addr);

  /// Drops every line (e.g., after page migration or between runs).
  void flush();

  uint64_t lineBytes() const { return LineBytes; }
  uint64_t lineAddr(uint64_t Addr) const { return Addr & ~(LineBytes - 1); }

private:
  struct Way {
    uint64_t Tag = 0;
    uint32_t LruStamp = 0;
    bool Valid = false;
    bool Dirty = false;
  };

  // Line size is asserted to be a power of two and set counts are in
  // practice too, so indexing is shift/mask on the hot path (SetShift
  // < 0 keeps the div/mod fallback for exotic configurations).
  unsigned setIndex(uint64_t Addr) const {
    uint64_t Line = Addr >> LineShift;
    return static_cast<unsigned>(SetShift >= 0 ? Line & (NumSets - 1)
                                               : Line % NumSets);
  }
  uint64_t tagOf(uint64_t Addr) const {
    uint64_t Line = Addr >> LineShift;
    return SetShift >= 0 ? Line >> SetShift : Line / NumSets;
  }

  Way *findWay(uint64_t Addr);
  const Way *findWay(uint64_t Addr) const;

  uint64_t LineBytes;
  uint64_t NumSets;
  unsigned LineShift = 0;
  int SetShift = -1;
  unsigned Assoc;
  uint32_t Clock = 0;
  std::vector<Way> Ways; ///< NumSets x Assoc, row-major by set.
};

} // namespace dsm::numa

#endif // DSM_NUMA_CACHE_H
