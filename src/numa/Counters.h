//===- numa/Counters.h - Simulated hardware event counters ------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event counters mirroring the R10000 performance counters the paper
/// uses for its analysis (secondary-cache misses, TLB-miss time share).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_COUNTERS_H
#define DSM_NUMA_COUNTERS_H

#include <cstdint>
#include <string>

namespace dsm::numa {

/// Aggregated machine event counts for a run (or an epoch).
struct Counters {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t TlbMisses = 0;
  uint64_t TlbMissCycles = 0;
  uint64_t LocalMemAccesses = 0;
  uint64_t RemoteMemAccesses = 0;
  uint64_t MemStallCycles = 0; ///< Cycles spent below L1 (incl. TLB).
  uint64_t Invalidations = 0;
  uint64_t DirtyInterventions = 0;
  uint64_t Writebacks = 0;
  uint64_t PageMigrations = 0;
  uint64_t PageFaults = 0;

  Counters &operator+=(const Counters &O) {
    Loads += O.Loads;
    Stores += O.Stores;
    L1Misses += O.L1Misses;
    L2Misses += O.L2Misses;
    TlbMisses += O.TlbMisses;
    TlbMissCycles += O.TlbMissCycles;
    LocalMemAccesses += O.LocalMemAccesses;
    RemoteMemAccesses += O.RemoteMemAccesses;
    MemStallCycles += O.MemStallCycles;
    Invalidations += O.Invalidations;
    DirtyInterventions += O.DirtyInterventions;
    Writebacks += O.Writebacks;
    PageMigrations += O.PageMigrations;
    PageFaults += O.PageFaults;
    return *this;
  }

  /// Memberwise equality (used by the threaded-vs-serial determinism
  /// tests to assert bit-exact accounting).
  bool operator==(const Counters &O) const = default;

  /// Memberwise difference; \p O must be a snapshot taken earlier from
  /// the same monotonically-growing counters (per-epoch deltas).
  Counters operator-(const Counters &O) const {
    Counters D;
    D.Loads = Loads - O.Loads;
    D.Stores = Stores - O.Stores;
    D.L1Misses = L1Misses - O.L1Misses;
    D.L2Misses = L2Misses - O.L2Misses;
    D.TlbMisses = TlbMisses - O.TlbMisses;
    D.TlbMissCycles = TlbMissCycles - O.TlbMissCycles;
    D.LocalMemAccesses = LocalMemAccesses - O.LocalMemAccesses;
    D.RemoteMemAccesses = RemoteMemAccesses - O.RemoteMemAccesses;
    D.MemStallCycles = MemStallCycles - O.MemStallCycles;
    D.Invalidations = Invalidations - O.Invalidations;
    D.DirtyInterventions = DirtyInterventions - O.DirtyInterventions;
    D.Writebacks = Writebacks - O.Writebacks;
    D.PageMigrations = PageMigrations - O.PageMigrations;
    D.PageFaults = PageFaults - O.PageFaults;
    return D;
  }

  /// One-line human-readable rendering.
  std::string str() const;
};

} // namespace dsm::numa

#endif // DSM_NUMA_COUNTERS_H
