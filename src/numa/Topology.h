//===- numa/Topology.h - Hypercube interconnect model -----------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hop-distance model of the Origin-2000's switch-based hypercube
/// interconnect (paper Section 2, Figure 1).  Nodes are vertices of a
/// hypercube; the router distance between two nodes is the Hamming
/// distance of their indices.  Non-power-of-two machines use the same
/// rule, which matches the generalized (incomplete) hypercube wiring.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_TOPOLOGY_H
#define DSM_NUMA_TOPOLOGY_H

#include <bit>
#include <cassert>
#include <cstdint>

#include "numa/MachineConfig.h"

namespace dsm::numa {

/// Hop distances and remote-latency computation for the hypercube.
class Topology {
public:
  explicit Topology(const MachineConfig &Config)
      : NumNodes(Config.NumNodes), Costs(Config.Costs) {
    assert(NumNodes > 0 && "machine must have at least one node");
  }

  /// Router hops between two nodes (0 when equal).
  unsigned hops(int NodeA, int NodeB) const {
    assert(NodeA >= 0 && NodeA < NumNodes && "node out of range");
    assert(NodeB >= 0 && NodeB < NumNodes && "node out of range");
    return static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(NodeA) ^
                      static_cast<unsigned>(NodeB)));
  }

  /// Memory latency seen by a processor on \p FromNode accessing memory
  /// on \p HomeNode.  Local misses cost CostModel::LocalMem; remote
  /// misses grow with hop count and saturate at RemoteMemMax.
  uint64_t memoryLatency(int FromNode, int HomeNode) const {
    unsigned H = hops(FromNode, HomeNode);
    if (H == 0)
      return Costs.LocalMem;
    uint64_t Latency = Costs.RemoteMemBase + Costs.RemoteMemPerHop * (H - 1);
    return Latency < Costs.RemoteMemMax ? Latency : Costs.RemoteMemMax;
  }

  int numNodes() const { return NumNodes; }

private:
  int NumNodes;
  CostModel Costs;
};

} // namespace dsm::numa

#endif // DSM_NUMA_TOPOLOGY_H
