//===- numa/MachineConfig.h - Simulated machine parameters ------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the simulated CC-NUMA machine.  The defaults follow
/// the Origin-2000 as described in Section 2 of the paper: two 195 MHz
/// R10000 processors per node, 32 KB / 32 B two-way L1 caches, a 4 MB /
/// 128 B two-way L2, 16 KB pages, ~70-cycle local and 110-180-cycle
/// remote miss latencies, and a hypercube interconnect.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_MACHINECONFIG_H
#define DSM_NUMA_MACHINECONFIG_H

#include <cstdint>

namespace dsm::numa {

/// Geometry of one set-associative cache.
struct CacheConfig {
  uint64_t SizeBytes = 0;
  uint64_t LineBytes = 0;
  unsigned Assoc = 1;

  uint64_t numLines() const { return SizeBytes / LineBytes; }
  uint64_t numSets() const { return numLines() / Assoc; }
};

/// Cycle costs of machine events.  Arithmetic-operation costs live here
/// too because the paper's Table 2 depends on the ratio between integer
/// divide (35 cycles on the R10000, not pipelined) and the FP-simulated
/// divide (11 cycles).
struct CostModel {
  uint64_t L1Hit = 1;
  uint64_t L2Hit = 10;
  uint64_t LocalMem = 70;       ///< L2 miss satisfied by local memory.
  uint64_t RemoteMemBase = 110; ///< One-hop remote miss.
  uint64_t RemoteMemPerHop = 14;
  uint64_t RemoteMemMax = 180;
  uint64_t TlbMiss = 60;
  uint64_t PageFaultCycles = 800; ///< Demand page-fault handling.
  uint64_t DirtyIntervention = 40; ///< Extra cost of 3-hop ownership xfer.
  uint64_t MemServiceCycles = 24;  ///< Per-request occupancy of one node's
                                   ///< memory/hub (bandwidth model).
  uint64_t MigratePageCycles = 8000; ///< redistribute page-move cost.

  uint64_t BarrierBase = 100;     ///< Fixed cost of a barrier.
  uint64_t BarrierPerLevel = 60;  ///< Per log2(P) tree level.
  uint64_t CallOverhead = 20;     ///< Subroutine call/return.

  uint64_t IntOp = 1;   ///< add/sub/mul/compare on integers.
  uint64_t FpOp = 2;    ///< FP add/mul.
  uint64_t FpDiv = 11;  ///< FP divide (also the FP-simulated int divide).
  uint64_t IntDiv = 35; ///< Integer divide or remainder.
};

/// Full machine description.
struct MachineConfig {
  int NumNodes = 64;
  int ProcsPerNode = 2;
  uint64_t PageSize = 16384;
  uint64_t NodeMemoryBytes = 256ull << 20;
  CacheConfig L1{32 * 1024, 32, 2};
  CacheConfig L2{4ull << 20, 128, 2};
  unsigned TlbEntries = 64;
  /// Scratch frames a redistribution may keep in flight at once: each
  /// page move in a transfer round occupies one frame until it lands,
  /// so a round larger than this budget drains in waves
  /// (runtime/RedistPlan.h; DESIGN.md Section 16).
  unsigned RedistScratchFrames = 8;
  CostModel Costs;

  int numProcs() const { return NumNodes * ProcsPerNode; }
  uint64_t framesPerNode() const { return NodeMemoryBytes / PageSize; }
  /// Number of distinct L2 page colors (frames that map to the same L2
  /// sets are the same color).
  uint64_t numPageColors() const {
    uint64_t WaySize = L2.SizeBytes / L2.Assoc;
    return WaySize > PageSize ? WaySize / PageSize : 1;
  }

  /// The Origin-2000 of the paper's Section 8: 64 nodes / 128 procs,
  /// 4 MB secondary caches, 16 GB total memory.
  static MachineConfig origin2000() { return MachineConfig(); }

  /// A proportionally scaled-down machine for fast benchmarking: cache
  /// and memory sizes shrink 16x (L2 256 KB, L1 4 KB, node memory
  /// 16 MB) while pages shrink only 4x (4 KB), preserving the paper's
  /// page-to-block-size ratio that drives the regular-distribution
  /// results (DESIGN.md Section 5).  Latencies and op costs are
  /// unchanged.
  static MachineConfig scaledOrigin() {
    MachineConfig C;
    C.PageSize = 4096;
    C.NodeMemoryBytes = 16ull << 20;
    C.L1 = CacheConfig{4 * 1024, 32, 2};
    C.L2 = CacheConfig{256 * 1024, 128, 2};
    C.TlbEntries = 64;
    return C;
  }
};

} // namespace dsm::numa

#endif // DSM_NUMA_MACHINECONFIG_H
