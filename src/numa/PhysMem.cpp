//===- numa/PhysMem.cpp - Per-node physical frame allocation --------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "numa/PhysMem.h"

#include <bit>
#include <cassert>

#include "support/Rng.h"

using namespace dsm;
using namespace dsm::numa;

PhysMem::PhysMem(const MachineConfig &Config)
    : NumNodes(Config.NumNodes), PageSize(Config.PageSize),
      FramesPerNode(Config.framesPerNode()),
      NumColors(Config.numPageColors()) {
  assert(FramesPerNode > 0 && "node memory smaller than one page");
  Used.assign(NumNodes, std::vector<bool>(FramesPerNode, false));
  UsedCount.assign(NumNodes, 0);
  NextSeq.assign(NumNodes, 0);
}

uint64_t PhysMem::findFrame(int Node, uint64_t VPage, FrameMode Mode) {
  auto &Pool = Used[Node];
  if (UsedCount[Node] >= FramesPerNode)
    return FramesPerNode;

  uint64_t Start;
  if (Mode == FrameMode::Colored) {
    // Try frames of the matching color first: color repeats every
    // NumColors frames.
    uint64_t Color = VPage % NumColors;
    for (uint64_t F = Color; F < FramesPerNode; F += NumColors)
      if (!Pool[F])
        return F;
    Start = VPage % FramesPerNode;
  } else {
    Start = hashMix64(VPage * 2654435761u + static_cast<uint64_t>(Node)) %
            FramesPerNode;
  }
  // Linear probe from the start position.
  for (uint64_t I = 0; I < FramesPerNode; ++I) {
    uint64_t F = (Start + I) % FramesPerNode;
    if (!Pool[F])
      return F;
  }
  return FramesPerNode;
}

std::optional<PhysMem::Allocation> PhysMem::allocOn(int Node,
                                                    uint64_t VPage,
                                                    FrameMode Mode) {
  assert(Node >= 0 && Node < NumNodes && "node out of range");
  uint64_t F = findFrame(Node, VPage, Mode);
  if (F >= FramesPerNode)
    return std::nullopt;
  Used[Node][F] = true;
  ++UsedCount[Node];
  return Allocation{Node, F};
}

std::optional<PhysMem::Allocation> PhysMem::alloc(int Node, uint64_t VPage,
                                                  FrameMode Mode) {
  assert(Node >= 0 && Node < NumNodes && "node out of range");
  // Visit nodes in increasing hop distance from the preferred node; ties
  // broken by index, matching nearest-neighbour spill on the hypercube.
  for (unsigned Hop = 0; Hop <= std::bit_width(
                                    static_cast<unsigned>(NumNodes));
       ++Hop) {
    for (int N = 0; N < NumNodes; ++N) {
      unsigned H = static_cast<unsigned>(
          std::popcount(static_cast<unsigned>(N) ^
                        static_cast<unsigned>(Node)));
      if (H != Hop)
        continue;
      if (auto A = allocOn(N, VPage, Mode))
        return A;
    }
  }
  return std::nullopt;
}

bool PhysMem::allocSpecific(int Node, uint64_t Frame) {
  assert(Node >= 0 && Node < NumNodes && "node out of range");
  assert(Frame < FramesPerNode && "frame out of range");
  if (Used[Node][Frame])
    return false;
  Used[Node][Frame] = true;
  ++UsedCount[Node];
  return true;
}

void PhysMem::free(int Node, uint64_t Frame) {
  assert(Node >= 0 && Node < NumNodes && "node out of range");
  assert(Frame < FramesPerNode && "frame out of range");
  assert(Used[Node][Frame] && "double free of physical frame");
  Used[Node][Frame] = false;
  --UsedCount[Node];
}
