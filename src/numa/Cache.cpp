//===- numa/Cache.cpp - Set-associative cache model -----------------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "numa/Cache.h"

#include <bit>
#include <cassert>
#include <cstddef>

using namespace dsm::numa;

Cache::Cache(const CacheConfig &Config)
    : LineBytes(Config.LineBytes), NumSets(Config.numSets()),
      Assoc(Config.Assoc) {
  assert(LineBytes > 0 && (LineBytes & (LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  assert(NumSets > 0 && "cache must have at least one set");
  LineShift = static_cast<unsigned>(std::countr_zero(LineBytes));
  if ((NumSets & (NumSets - 1)) == 0)
    SetShift = std::countr_zero(NumSets);
  Ways.resize(NumSets * Assoc);
}

Cache::Way *Cache::findWay(uint64_t Addr) {
  unsigned Set = setIndex(Addr);
  uint64_t Tag = tagOf(Addr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Assoc];
  for (unsigned W = 0; W < Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return &Base[W];
  return nullptr;
}

const Cache::Way *Cache::findWay(uint64_t Addr) const {
  return const_cast<Cache *>(this)->findWay(Addr);
}

CacheAccessResult Cache::access(uint64_t Addr, bool IsWrite) {
  CacheAccessResult Result;
  ++Clock;
  if (Way *W = findWay(Addr)) {
    W->LruStamp = Clock;
    W->Dirty |= IsWrite;
    Result.Hit = true;
    return Result;
  }

  // Miss: pick the LRU way in the set (preferring invalid ways).
  unsigned Set = setIndex(Addr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Assoc];
  Way *Victim = &Base[0];
  for (unsigned W = 0; W < Assoc; ++W) {
    if (!Base[W].Valid) {
      Victim = &Base[W];
      break;
    }
    if (Base[W].LruStamp < Victim->LruStamp)
      Victim = &Base[W];
  }

  if (Victim->Valid) {
    Result.Evicted = true;
    Result.EvictedDirty = Victim->Dirty;
    Result.EvictedLineAddr =
        (Victim->Tag * NumSets + Set) * LineBytes;
  }

  Victim->Tag = tagOf(Addr);
  Victim->Valid = true;
  Victim->Dirty = IsWrite;
  Victim->LruStamp = Clock;
  return Result;
}

bool Cache::contains(uint64_t Addr) const { return findWay(Addr) != nullptr; }

bool Cache::invalidate(uint64_t Addr) {
  if (Way *W = findWay(Addr)) {
    bool WasDirty = W->Dirty;
    W->Valid = false;
    W->Dirty = false;
    return WasDirty;
  }
  return false;
}

bool Cache::cleanLine(uint64_t Addr) {
  if (Way *W = findWay(Addr)) {
    W->Dirty = false;
    return true;
  }
  return false;
}

void Cache::flush() {
  for (Way &W : Ways) {
    W.Valid = false;
    W.Dirty = false;
  }
  Clock = 0;
}
