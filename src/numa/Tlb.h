//===- numa/Tlb.h - Per-processor TLB model ---------------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully-associative LRU TLB over virtual page numbers.  The R10000
/// has a 64-entry fully-associative TLB; TLB-miss time is what separates
/// the reshaped and round-robin transpose versions in paper Section 8.2.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_TLB_H
#define DSM_NUMA_TLB_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsm::numa {

/// Fully-associative LRU translation lookaside buffer.
class Tlb {
public:
  explicit Tlb(unsigned NumEntries) : Entries(NumEntries) {}

  /// Looks up \p VPage, filling on miss.  Returns true on hit.
  bool access(uint64_t VPage) {
    ++Clock;
    // MRU fast path: loop nests touch the same page many times in a row,
    // and in a fully-associative TLB checking the last-hit entry first
    // cannot change hit/miss outcomes or victim choice.
    if (Mru < Entries.size()) {
      Entry &M = Entries[Mru];
      if (M.Valid && M.VPage == VPage) {
        M.LruStamp = Clock;
        return true;
      }
    }
    for (Entry &E : Entries)
      if (E.Valid && E.VPage == VPage) {
        E.LruStamp = Clock;
        Mru = static_cast<size_t>(&E - Entries.data());
        return true;
      }
    Entry *Victim = &Entries[0];
    for (Entry &E : Entries) {
      if (!E.Valid) {
        Victim = &E;
        break;
      }
      if (E.LruStamp < Victim->LruStamp)
        Victim = &E;
    }
    Victim->VPage = VPage;
    Victim->Valid = true;
    Victim->LruStamp = Clock;
    Mru = static_cast<size_t>(Victim - Entries.data());
    return false;
  }

  /// MRU-only probe: one compare, no state change.  True means a
  /// subsequent access(\p VPage) is guaranteed to take the MRU fast
  /// path (hit, stamp refresh, nothing else).  False says nothing --
  /// the page may still be resident in a non-MRU slot -- so callers
  /// must treat it as "take the full path", never as a miss.  The
  /// strip-mined batch path uses this to keep the expected
  /// stay-on-page case at two compares total.
  bool mruContains(uint64_t VPage) const {
    if (Mru < Entries.size()) {
      const Entry &M = Entries[Mru];
      return M.Valid && M.VPage == VPage;
    }
    return false;
  }

  /// Drops the mapping for \p VPage (TLB shootdown on migration).
  void invalidate(uint64_t VPage) {
    for (Entry &E : Entries)
      if (E.Valid && E.VPage == VPage)
        E.Valid = false;
  }

  void flush() {
    for (Entry &E : Entries)
      E.Valid = false;
    Clock = 0;
    Mru = SIZE_MAX;
  }

private:
  struct Entry {
    uint64_t VPage = 0;
    uint32_t LruStamp = 0;
    bool Valid = false;
  };
  std::vector<Entry> Entries;
  uint32_t Clock = 0;
  size_t Mru = SIZE_MAX; ///< Index of the last entry hit or filled.
};

} // namespace dsm::numa

#endif // DSM_NUMA_TLB_H
