//===- numa/Tlb.h - Per-processor TLB model ---------------------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully-associative LRU TLB over virtual page numbers.  The R10000
/// has a 64-entry fully-associative TLB; TLB-miss time is what separates
/// the reshaped and round-robin transpose versions in paper Section 8.2.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_TLB_H
#define DSM_NUMA_TLB_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsm::numa {

/// Fully-associative LRU translation lookaside buffer.
class Tlb {
public:
  explicit Tlb(unsigned NumEntries) : Entries(NumEntries) {}

  /// Looks up \p VPage, filling on miss.  Returns true on hit.
  bool access(uint64_t VPage) {
    ++Clock;
    // MRU fast path: loop nests touch the same page many times in a row,
    // and in a fully-associative TLB checking the last-hit entry first
    // cannot change hit/miss outcomes or victim choice.
    if (Mru < Entries.size()) {
      Entry &M = Entries[Mru];
      if (M.Valid && M.VPage == VPage) {
        M.LruStamp = Clock;
        return true;
      }
    }
    for (Entry &E : Entries)
      if (E.Valid && E.VPage == VPage) {
        E.LruStamp = Clock;
        Mru = static_cast<size_t>(&E - Entries.data());
        return true;
      }
    Entry *Victim = &Entries[0];
    for (Entry &E : Entries) {
      if (!E.Valid) {
        Victim = &E;
        break;
      }
      if (E.LruStamp < Victim->LruStamp)
        Victim = &E;
    }
    Victim->VPage = VPage;
    Victim->Valid = true;
    Victim->LruStamp = Clock;
    Mru = static_cast<size_t>(Victim - Entries.data());
    return false;
  }

  /// MRU-only probe: one compare, no state change.  True means a
  /// subsequent access(\p VPage) is guaranteed to take the MRU fast
  /// path (hit, stamp refresh, nothing else).  False says nothing --
  /// the page may still be resident in a non-MRU slot -- so callers
  /// must treat it as "take the full path", never as a miss.  The
  /// strip-mined batch path uses this to keep the expected
  /// stay-on-page case at two compares total.
  bool mruContains(uint64_t VPage) const {
    if (Mru < Entries.size()) {
      const Entry &M = Entries[Mru];
      return M.Valid && M.VPage == VPage;
    }
    return false;
  }

  /// Resident-entry lookup with no state change: index of the valid
  /// entry holding \p VPage, or SIZE_MAX if the page is not resident.
  /// The run-batched strip path uses this once per window open; the
  /// index stays valid for reuse as long as pageAt(Idx) still returns
  /// \p VPage (entries never move and the TLB never holds duplicates).
  size_t findEntry(uint64_t VPage) const {
    for (const Entry &E : Entries)
      if (E.Valid && E.VPage == VPage)
        return static_cast<size_t>(&E - Entries.data());
    return SIZE_MAX;
  }

  /// Page held by entry \p Idx, or ~0 if the slot is invalid or out of
  /// range.  Pure probe, for validating cached findEntry indices.
  uint64_t pageAt(size_t Idx) const {
    if (Idx < Entries.size() && Entries[Idx].Valid)
      return Entries[Idx].VPage;
    return ~0ull;
  }

  /// Page held by the MRU entry, or ~0 if there is none.  Pure probe.
  uint64_t mruPage() const { return pageAt(Mru); }

  /// Run-batched commit (MemorySystem::commitRun): re-stamps resident
  /// entry \p Idx as if its most recent hit happened \p LastTick clock
  /// ticks after the current clock.  The caller stamps every entry a
  /// window touched in ascending tick order, advances the clock once
  /// with advanceClock(), and installs the final MRU with setMru() --
  /// together equivalent to the interleaved scalar access() sequence
  /// when every access hits.
  void runStamp(size_t Idx, uint32_t LastTick) {
    Entries[Idx].LruStamp = Clock + LastTick;
  }
  void advanceClock(uint32_t Ticks) { Clock += Ticks; }
  void setMru(size_t Idx) { Mru = Idx; }

  /// Whether entry \p Idx is the MRU entry.  Pure probe; the
  /// run-continuation path (MemorySystem::runAccess) uses it to decide
  /// which scalar pipeline it is reproducing before committing the hit.
  bool mruIs(size_t Idx) const { return Mru == Idx; }

  /// Commits a hit on resident entry \p Idx: clock tick, LRU stamp,
  /// MRU update.  Bit-identical to a hitting access() for the page the
  /// entry holds -- the MRU fast path leaves Mru already equal to Idx,
  /// and the scan path sets it, so the unconditional store covers both.
  /// The caller must have validated pageAt(Idx) against its page.
  void accessAt(size_t Idx) {
    ++Clock;
    Entries[Idx].LruStamp = Clock;
    Mru = Idx;
  }

  /// Drops the mapping for \p VPage (TLB shootdown on migration).
  void invalidate(uint64_t VPage) {
    for (Entry &E : Entries)
      if (E.Valid && E.VPage == VPage)
        E.Valid = false;
  }

  void flush() {
    for (Entry &E : Entries)
      E.Valid = false;
    Clock = 0;
    Mru = SIZE_MAX;
  }

private:
  struct Entry {
    uint64_t VPage = 0;
    uint32_t LruStamp = 0;
    bool Valid = false;
  };
  std::vector<Entry> Entries;
  uint32_t Clock = 0;
  size_t Mru = SIZE_MAX; ///< Index of the last entry hit or filled.
};

} // namespace dsm::numa

#endif // DSM_NUMA_TLB_H
