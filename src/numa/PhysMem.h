//===- numa/PhysMem.h - Per-node physical frame allocation ------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical-frame allocators, one per node.  Frames matter for two
/// paper-visible effects:
///
///  * capacity: NAS-LU class C exceeds one node's memory, so even the
///    uniprocessor run has remote references (paper Section 8.1) -- when a
///    node is full, allocation spills to the nearest node with free
///    frames;
///  * page coloring: the physically-indexed L2 suffers conflict misses
///    when virtually-contiguous pages land on conflicting frames (paper
///    Section 8.2).  Colored allocation picks a frame whose L2 color
///    matches the virtual page's color; hashed allocation models a
///    fragmented free list.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_PHYSMEM_H
#define DSM_NUMA_PHYSMEM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "numa/MachineConfig.h"

namespace dsm::numa {

/// How a physical frame is chosen within a node.
enum class FrameMode {
  Colored, ///< Prefer a frame matching the virtual page's L2 color.
  Hashed   ///< Deterministically pseudo-random frame (fragmented pool).
};

/// All nodes' frame pools.  Physical addresses are globally unique:
/// phys = (Node * FramesPerNode + Frame) * PageSize + offset.
class PhysMem {
public:
  explicit PhysMem(const MachineConfig &Config);

  /// Allocates a frame on \p Node (or, if full, the nearest node with
  /// space by hop count).  \p VPage drives the color/hash choice.
  /// Returns {node, frame}, or std::nullopt when the whole machine is
  /// full -- callers degrade gracefully instead of the process dying.
  struct Allocation {
    int Node;
    uint64_t Frame;
  };
  std::optional<Allocation> alloc(int Node, uint64_t VPage, FrameMode Mode);

  /// Allocates a frame on \p Node only (no spill); std::nullopt when
  /// the node is full.  Lets MemorySystem walk its own fallback order
  /// under fault-injected capacity limits.
  std::optional<Allocation> allocOn(int Node, uint64_t VPage,
                                    FrameMode Mode);

  /// Re-marks a specific frame used (re-pinning a page whose
  /// replacement allocation failed).  Returns false if the frame is
  /// already taken.
  bool allocSpecific(int Node, uint64_t Frame);

  /// Releases \p Frame on \p Node.
  void free(int Node, uint64_t Frame);

  /// Global physical base address of a page.
  uint64_t physBase(int Node, uint64_t Frame) const {
    return (static_cast<uint64_t>(Node) * FramesPerNode + Frame) * PageSize;
  }

  uint64_t framesUsed(int Node) const { return UsedCount[Node]; }
  uint64_t framesPerNode() const { return FramesPerNode; }

private:
  /// Finds a free frame on \p Node; returns FramesPerNode if none.
  uint64_t findFrame(int Node, uint64_t VPage, FrameMode Mode);

  int NumNodes;
  uint64_t PageSize;
  uint64_t FramesPerNode;
  uint64_t NumColors;
  std::vector<std::vector<bool>> Used; ///< Per node, per frame.
  std::vector<uint64_t> UsedCount;
  std::vector<uint64_t> NextSeq; ///< Per-node sequential cursor.
};

} // namespace dsm::numa

#endif // DSM_NUMA_PHYSMEM_H
