//===- numa/MemorySystem.cpp - CC-NUMA memory hierarchy model -------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "numa/MemorySystem.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "fault/Injector.h"
#include "support/Error.h"

using namespace dsm;
using namespace dsm::numa;

MemorySystem::MemorySystem(const MachineConfig &Config)
    : Config(Config), Topo(Config), Frames(Config),
      Dir(Config.numProcs()) {
  Procs.reserve(Config.numProcs());
  for (int P = 0; P < Config.numProcs(); ++P)
    Procs.push_back(std::make_unique<ProcState>(Config));
  EpochRequests.assign(Config.NumNodes, 0);
}

//===----------------------------------------------------------------------===//
// Virtual-memory management.
//===----------------------------------------------------------------------===//

uint64_t MemorySystem::allocVirtual(uint64_t Bytes, uint64_t Align) {
  assert(Align > 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  NextVirtual = (NextVirtual + Align - 1) & ~(Align - 1);
  uint64_t Addr = NextVirtual;
  NextVirtual += Bytes;
  // Pad so distinct allocations never share a page: physical placement
  // is per-page and we do not want accidental inter-array page sharing
  // to depend on allocation order.
  NextVirtual =
      (NextVirtual + Config.PageSize - 1) & ~(Config.PageSize - 1);
  return Addr;
}

uint64_t MemorySystem::allocOnNode(uint64_t Bytes, int Node) {
  uint64_t Addr = allocVirtual(Bytes, Config.PageSize);
  placeRange(Addr, Bytes, Node, FrameMode::Colored);
  return Addr;
}

std::optional<PhysMem::Allocation>
MemorySystem::allocFrame(int Pref, uint64_t VPage, FrameMode Mode,
                         bool AvoidPref) {
  unsigned MaxHop =
      std::bit_width(static_cast<unsigned>(Config.NumNodes));
  int Passes = Inj ? 2 : 1;
  for (int Pass = 0; Pass < Passes; ++Pass) {
    for (unsigned Hop = 0; Hop <= MaxHop; ++Hop) {
      for (int N = 0; N < Config.NumNodes; ++N) {
        unsigned H = static_cast<unsigned>(
            std::popcount(static_cast<unsigned>(N) ^
                          static_cast<unsigned>(Pref)));
        if (H != Hop)
          continue;
        if (AvoidPref && N == Pref)
          continue;
        if (Pass == 0 && Inj &&
            (Inj->overFrameCap(N, Frames.framesUsed(N)) ||
             DSM_BUGGIFY(Inj->buggify(), "phys_full",
                         VPage * 31 + static_cast<uint64_t>(N))))
          continue; // Buggify: pretend N is full; take the spill pass.
        if (auto A = Frames.allocOn(N, VPage, Mode)) {
          if (Pass == 1) {
            // Every node was over its soft cap; breach it rather than
            // fail -- the cap is a fault hint, not a hard limit.
            ++Inj->counters().CapacityOverflows;
            if (Obs)
              Obs->onFaultInjected("capacity_overflow", VPage, N);
          }
          return A;
        }
      }
    }
  }
  return std::nullopt;
}

void MemorySystem::makeUnbacked(PageInfo &PI, uint64_t VPage,
                                int HomeNode) {
  // Pseudo physical page index past every real frame keeps cache and
  // directory indexing collision-free:
  //   physBase(Node, Frame) == (NumNodes * FramesPerNode + Seq) * PageSize
  uint64_t FPN = Frames.framesPerNode();
  PI.Node = HomeNode;
  PI.Frame =
      (static_cast<uint64_t>(Config.NumNodes - HomeNode)) * FPN +
      OverflowSeq++;
  PI.Mapped = true;
  PI.Backed = false;
  if (Inj)
    ++Inj->counters().CapacityOverflows;
  if (Obs)
    Obs->onFaultInjected("unbacked_page", VPage, HomeNode);
}

void MemorySystem::placePage(uint64_t VPage, int Node, FrameMode Mode) {
  assert(Node >= 0 && Node < Config.NumNodes && "node out of range");
  PageInfo &PI = Pages[VPage];
  bool AvoidPref = false;
  // denyPlacePage always runs first so PlaceSeq advances identically
  // whether or not the buggify layer is armed.
  if (Inj && (Inj->denyPlacePage(VPage, Node) ||
              DSM_BUGGIFY(Inj->buggify(), "place_deny", VPage))) {
    ++Inj->counters().PlacementsDenied;
    if (Obs)
      Obs->onFaultInjected("place_denied", VPage, Node);
    if (PI.Mapped)
      return; // Denied re-placement: the page stays where it is.
    AvoidPref = true; // Fall back to a neighbor by topology distance.
  }
  if (PI.Mapped && PI.Node == Node)
    return;
  bool HadOld = PI.Mapped && PI.Backed;
  int OldNode = PI.Node;
  uint64_t OldFrame = PI.Frame;
  if (HadOld)
    Frames.free(OldNode, OldFrame);
  std::optional<PhysMem::Allocation> A =
      allocFrame(Node, VPage, Mode, AvoidPref);
  if (!A) {
    if (HadOld) {
      // Machine full: keep the old backing (placement is only a hint).
      bool Repinned = Frames.allocSpecific(OldNode, OldFrame);
      assert(Repinned && "frame taken while page owned it");
      (void)Repinned;
      return;
    }
    if (PI.Mapped)
      return; // Already unbacked; nothing to improve.
    makeUnbacked(PI, VPage, Node);
    return;
  }
  PI.Node = A->Node;
  PI.Frame = A->Frame;
  PI.Mapped = true;
  PI.Backed = true;
  if (Inj && A->Node != Node) {
    ++Inj->counters().PlacementFallbacks;
    if (Obs)
      Obs->onFaultInjected("place_fallback", VPage, A->Node);
  }
  if (Obs)
    Obs->onPagePlace(VPage, A->Node, Mode == FrameMode::Colored);
}

void MemorySystem::placeRange(uint64_t Addr, uint64_t Bytes, int Node,
                              FrameMode Mode) {
  if (Bytes == 0)
    return;
  uint64_t First = pageOf(Addr);
  uint64_t Last = pageOf(Addr + Bytes - 1);
  for (uint64_t VPage = First; VPage <= Last; ++VPage)
    placePage(VPage, Node, Mode);
}

bool MemorySystem::migratePage(uint64_t VPage, int NewNode) {
  auto It = Pages.find(VPage);
  if (It == Pages.end() || !It->second.Mapped) {
    placePage(VPage, NewNode, FrameMode::Hashed);
    return true;
  }
  PageInfo &PI = It->second;
  if (PI.Node == NewNode)
    return true;
  if (Inj && (Inj->denyMigratePage(VPage, NewNode) ||
              DSM_BUGGIFY(Inj->buggify(), "migrate_deny", VPage))) {
    ++Inj->counters().MigrationsDenied;
    if (Obs)
      Obs->onFaultInjected("migrate_denied", VPage, NewNode);
    return false;
  }

  // Shoot down stale translations and cached lines under the old
  // physical address.
  uint64_t OldPhysBase = Frames.physBase(PI.Node, PI.Frame);
  for (auto &P : Procs) {
    P->Dtlb.invalidate(VPage);
    for (uint64_t Off = 0; Off < Config.PageSize;
         Off += Config.L1.LineBytes)
      P->L1.invalidate(OldPhysBase + Off);
    for (uint64_t Off = 0; Off < Config.PageSize;
         Off += Config.L2.LineBytes)
      P->L2.invalidate(OldPhysBase + Off);
  }
  for (uint64_t Off = 0; Off < Config.PageSize; Off += Config.L2.LineBytes)
    Dir.erase(OldPhysBase + Off);

  int OldNode = PI.Node;
  bool HadOld = PI.Backed;
  uint64_t OldFrame = PI.Frame;
  if (HadOld)
    Frames.free(OldNode, OldFrame);
  std::optional<PhysMem::Allocation> A =
      allocFrame(NewNode, VPage, FrameMode::Hashed, /*AvoidPref=*/false);
  if (!A) {
    // Machine full: the move fails, the page keeps its old backing.
    if (HadOld) {
      bool Repinned = Frames.allocSpecific(OldNode, OldFrame);
      assert(Repinned && "frame taken while page owned it");
      (void)Repinned;
    }
    if (Inj)
      ++Inj->counters().CapacityOverflows;
    if (Obs)
      Obs->onFaultInjected("capacity_overflow", VPage, NewNode);
    return false;
  }
  PI.Node = A->Node;
  PI.Frame = A->Frame;
  PI.Backed = true;
  ++Stats.PageMigrations;
  if (Obs)
    Obs->onPageMigrate(VPage, OldNode, A->Node);
  return true;
}

int MemorySystem::pageHomeNode(uint64_t VPage) const {
  auto It = Pages.find(VPage);
  if (It == Pages.end() || !It->second.Mapped)
    return -1;
  return It->second.Node;
}

uint64_t MemorySystem::pagesOnNode(int Node) const {
  uint64_t N = 0;
  for (const auto &[VPage, PI] : Pages)
    if (PI.Mapped && PI.Node == Node)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Simulated accesses.
//===----------------------------------------------------------------------===//

MemorySystem::PageInfo &MemorySystem::faultIn(uint64_t VPage, int Proc,
                                              uint64_t &Cycles) {
  PageInfo &PI = Pages[VPage];
  if (PI.Mapped)
    return PI;
  ++Stats.PageFaults;
  Cycles += Config.Costs.PageFaultCycles;
  int Node;
  if (DefaultPolicy == PlacementPolicy::FirstTouch) {
    Node = nodeOfProc(Proc);
  } else {
    Node = static_cast<int>(RoundRobinNext++ %
                            static_cast<uint64_t>(Config.NumNodes));
  }
  std::optional<PhysMem::Allocation> A =
      allocFrame(Node, VPage, FrameMode::Hashed, /*AvoidPref=*/false);
  if (!A) {
    makeUnbacked(PI, VPage, Node);
    if (Obs)
      Obs->onPageFault(VPage, Node, Proc);
    return PI;
  }
  PI.Node = A->Node;
  PI.Frame = A->Frame;
  PI.Mapped = true;
  PI.Backed = true;
  if (Inj && A->Node != Node &&
      Inj->overFrameCap(Node, Frames.framesUsed(Node))) {
    // A soft cap on the policy's choice redirected this fault.
    ++Inj->counters().PlacementFallbacks;
    if (Obs)
      Obs->onFaultInjected("place_fallback", VPage, A->Node);
  }
  if (Obs)
    Obs->onPageFault(VPage, A->Node, Proc);
  return PI;
}

bool MemorySystem::invalidateLineEverywhere(int Proc, uint64_t PhysLine) {
  ProcState &P = *Procs[Proc];
  bool Dirty = P.L2.invalidate(PhysLine);
  for (uint64_t Off = 0; Off < Config.L2.LineBytes;
       Off += Config.L1.LineBytes)
    Dirty |= P.L1.invalidate(PhysLine + Off);
  return Dirty;
}

uint64_t MemorySystem::coherenceAction(int Proc, uint64_t PhysLine,
                                       bool IsWrite, int HomeNode,
                                       bool PaidMemLatency,
                                       uint64_t VAddr) {
  DirEntry &E = Dir.entry(PhysLine);
  uint64_t Extra = 0;

  if (!IsWrite) {
    if (E.Owner == Proc || E.hasSharer(Proc))
      return 0;
    if (E.Owner != -1) {
      // Dirty (or exclusive) copy elsewhere: 3-hop intervention, the
      // owner writes back and downgrades to shared.
      Extra += Config.Costs.DirtyIntervention;
      ++Stats.DirtyInterventions;
      ProcState &O = *Procs[E.Owner];
      bool WasDirty = O.L2.cleanLine(PhysLine);
      for (uint64_t Off = 0; Off < Config.L2.LineBytes;
           Off += Config.L1.LineBytes)
        WasDirty |= O.L1.cleanLine(PhysLine + Off);
      if (WasDirty) {
        ++Stats.Writebacks;
        ++EpochRequests[HomeNode];
      }
      E.Owner = -1;
    }
    bool SoleSharer = true;
    E.forEachSharer(Proc, [&](int) { SoleSharer = false; });
    E.addSharer(Proc, Dir.numWords());
    if (SoleSharer && E.Owner == -1)
      E.Owner = Proc; // MESI exclusive grant: later write is silent.
    return Extra;
  }

  // Write path.
  if (E.Owner == Proc)
    return 0;
  unsigned NumInvalidated = 0;
  E.forEachSharer(Proc, [&](int Q) {
    if (invalidateLineEverywhere(Q, PhysLine)) {
      ++Stats.Writebacks;
      ++EpochRequests[HomeNode];
    }
    ++NumInvalidated;
  });
  Stats.Invalidations += NumInvalidated;
  if (Obs && NumInvalidated)
    Obs->onInvalidations(VAddr, NumInvalidated);
  if (!PaidMemLatency) {
    // Upgrade transaction to the home directory.
    Extra += Topo.memoryLatency(nodeOfProc(Proc), HomeNode);
    ++EpochRequests[HomeNode];
  }
  E.clearSharers();
  E.addSharer(Proc, Dir.numWords());
  E.Owner = Proc;
  return Extra;
}

uint64_t MemorySystem::access(int Proc, uint64_t Addr, unsigned Bytes,
                              bool IsWrite) {
  assert(Proc >= 0 && Proc < numProcs() && "processor out of range");
  assert(Bytes > 0 && Bytes <= 8 && Addr % Bytes == 0 &&
         "simulated accesses must be naturally aligned");
  const CostModel &Costs = Config.Costs;
  uint64_t Cycles = 0;
  uint64_t VPage = pageOf(Addr);
  ProcState &P = *Procs[Proc];

  if (IsWrite)
    ++Stats.Stores;
  else
    ++Stats.Loads;

  // Address translation.
  if (!P.Dtlb.access(VPage)) {
    ++Stats.TlbMisses;
    uint64_t MissCycles = Costs.TlbMiss;
    if (Inj && (Inj->failTlbFill(Proc, VPage) ||
                DSM_BUGGIFY(Inj->buggify(), "tlb_retry", VPage))) {
      // Transient fill failure: the walk is retried, doubling the
      // penalty.  Translation still succeeds -- only cycles change.
      MissCycles += Costs.TlbMiss;
      ++Inj->counters().TlbFillRetries;
      if (Obs)
        Obs->onFaultInjected("tlb_retry", VPage, nodeOfProc(Proc));
    }
    Cycles += MissCycles;
    Stats.TlbMissCycles += MissCycles;
    if (Obs)
      Obs->onTlbMiss(Proc, Addr);
  }
  PageInfo *PIPtr;
  if (P.LastVPage == VPage) {
    PIPtr = P.LastPI;
  } else {
    PIPtr = &faultIn(VPage, Proc, Cycles);
    P.LastVPage = VPage;
    P.LastPI = PIPtr;
  }
  PageInfo &PI = *PIPtr;
  uint64_t Phys =
      Frames.physBase(PI.Node, PI.Frame) + Addr % Config.PageSize;
  uint64_t PhysLine = Phys & ~(Config.L2.LineBytes - 1);
  int HomeNode = PI.Node;
  int MyNode = nodeOfProc(Proc);

  // Primary cache.
  CacheAccessResult R1 = P.L1.access(Phys, IsWrite);
  if (R1.Hit) {
    Cycles += Costs.L1Hit;
    Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                              /*PaidMemLatency=*/false, Addr);
    return Cycles;
  }
  ++Stats.L1Misses;
  if (R1.Evicted && R1.EvictedDirty) {
    // Dirty L1 victim folds into L2; if L2 already lost it, it goes to
    // its home memory.
    if (P.L2.contains(R1.EvictedLineAddr)) {
      P.L2.access(R1.EvictedLineAddr, /*IsWrite=*/true);
    } else {
      uint64_t VictimHome =
          R1.EvictedLineAddr /
          (Frames.framesPerNode() * Config.PageSize);
      ++Stats.Writebacks;
      if (VictimHome < static_cast<uint64_t>(Config.NumNodes))
        ++EpochRequests[VictimHome];
    }
  }

  // Secondary cache.
  CacheAccessResult R2 = P.L2.access(Phys, IsWrite);
  if (R2.Hit) {
    Cycles += Costs.L2Hit;
    Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                              /*PaidMemLatency=*/false, Addr);
    Stats.MemStallCycles += Cycles > Costs.L1Hit ? Cycles - Costs.L1Hit : 0;
    return Cycles;
  }
  ++Stats.L2Misses;
  if (R2.Evicted) {
    uint64_t Victim = R2.EvictedLineAddr;
    if (DirEntry *VE = Dir.lookup(Victim)) {
      VE->removeSharer(Proc);
      if (VE->Owner == Proc)
        VE->Owner = -1;
    }
    bool VictimDirty = R2.EvictedDirty;
    for (uint64_t Off = 0; Off < Config.L2.LineBytes;
         Off += Config.L1.LineBytes)
      VictimDirty |= P.L1.invalidate(Victim + Off);
    if (VictimDirty) {
      uint64_t VictimHome =
          Victim / (Frames.framesPerNode() * Config.PageSize);
      ++Stats.Writebacks;
      if (VictimHome < static_cast<uint64_t>(Config.NumNodes))
        ++EpochRequests[VictimHome];
    }
  }

  // Memory (through the home node's hub/directory).
  uint64_t Latency = Topo.memoryLatency(MyNode, HomeNode);
  if (Inj) {
    if (uint64_t Spike = Inj->drawLatencySpike(MyNode, HomeNode)) {
      Latency += Spike;
      ++Inj->counters().LatencySpikes;
      Inj->counters().LatencySpikeCycles += Spike;
      if (Obs)
        Obs->onFaultInjected("latency_spike", VPage, HomeNode);
    }
  }
  Cycles += Costs.L2Hit + Latency;
  if (HomeNode == MyNode)
    ++Stats.LocalMemAccesses;
  else
    ++Stats.RemoteMemAccesses;
  ++EpochRequests[HomeNode];
  if (Obs)
    Obs->onMemAccess(Proc, MyNode, HomeNode, Addr, IsWrite);
  Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                            /*PaidMemLatency=*/true, Addr);
  Stats.MemStallCycles += Cycles > Costs.L1Hit ? Cycles - Costs.L1Hit : 0;
  return Cycles;
}

uint64_t MemorySystem::batchAccess(int Proc, uint64_t Addr, unsigned Bytes,
                                   bool IsWrite, BatchAccess &Site) {
  uint64_t VPage = pageOf(Addr);
  ProcState &P = *Procs[Proc];

  // Fast path: the access is provably a pure L1 hit whose directory
  // action is a no-op.  The proof obligations, in order:
  //  - same page as the site's cached translation, so Phys is exact;
  //  - still the coherence unit the site settled on, so the directory
  //    already records Proc as sharer (reads) / owner (writes) --
  //    nothing this processor did since can have changed that without
  //    evicting the line from L2, and L2 eviction sweeps the L1
  //    sublines (inclusive hierarchy), which the L1 probe catches;
  //  - the TLB's MRU entry is this page (so the committed access()
  //    below is guaranteed a hit) and the L1 actually hits.
  // L1.accessIfHit commits the hit (clock tick, LRU stamp, dirty bit)
  // in the same call that proves it; a miss touches nothing, and the
  // fall-through access() then performs the one real access.  The
  // skipped work -- page-table memo, physBase recomputation, and the
  // settled coherenceAction -- is all provably state- and cost-free.
  // Buggify (host-only tag): force the committed slow path for an
  // otherwise-eligible access.  Equivalence of the two paths is the
  // memo's core invariant, so firing is unobservable in the simulation
  // -- which is exactly what the swarm oracle then proves.  The check
  // runs last so it only draws when the fast path would be taken.
  if (VPage == Site.VPage &&
      (IsWrite ? Site.WriteSettled : Site.ReadSettled) &&
      P.Dtlb.mruContains(VPage) &&
      !(Inj && DSM_BUGGIFY(Inj->buggify(), "batch_slow", Addr))) {
    uint64_t Phys = Addr + Site.PhysMinusVirt;
    if ((Phys & ~(Config.L2.LineBytes - 1)) == Site.PhysL2Line &&
        P.L1.accessIfHit(Phys, IsWrite)) {
      if (IsWrite)
        ++Stats.Stores;
      else
        ++Stats.Loads;
      P.Dtlb.access(VPage);
      return Config.Costs.L1Hit;
    }
  }

  // Slow path: the real pipeline, then re-prime the site from the
  // per-processor page memo access() just refreshed.
  uint64_t Cycles = access(Proc, Addr, Bytes, IsWrite);
  const PageInfo &PI = *P.LastPI;
  Site.VPage = VPage;
  Site.PhysMinusVirt =
      Frames.physBase(PI.Node, PI.Frame) - VPage * Config.PageSize;
  Site.PhysL2Line =
      (Addr + Site.PhysMinusVirt) & ~(Config.L2.LineBytes - 1);
  Site.ReadSettled = true;
  Site.WriteSettled = IsWrite;
  return Cycles;
}

//===----------------------------------------------------------------------===//
// Functional data.
//===----------------------------------------------------------------------===//

uint8_t *MemorySystem::funcPageData(uint64_t VPage) const {
  std::lock_guard<std::mutex> Lock(DataMu);
  auto It = Data.find(VPage);
  if (It == Data.end()) {
    auto Page = std::make_unique<uint8_t[]>(Config.PageSize);
    std::memset(Page.get(), 0, Config.PageSize);
    It = Data.emplace(VPage, std::move(Page)).first;
  }
  return It->second.get();
}

uint8_t *MemorySystem::dataFor(uint64_t Addr, unsigned Bytes) const {
  uint64_t VPage = Addr / Config.PageSize;
  uint64_t Off = Addr % Config.PageSize;
  assert(Off + Bytes <= Config.PageSize && "access crosses a page");
  (void)Bytes;
  return funcPageData(VPage) + Off;
}

double MemorySystem::readF64(uint64_t Addr) const {
  double V;
  std::memcpy(&V, dataFor(Addr, 8), 8);
  return V;
}

void MemorySystem::writeF64(uint64_t Addr, double Value) {
  std::memcpy(dataFor(Addr, 8), &Value, 8);
}

int64_t MemorySystem::readI64(uint64_t Addr) const {
  int64_t V;
  std::memcpy(&V, dataFor(Addr, 8), 8);
  return V;
}

void MemorySystem::writeI64(uint64_t Addr, int64_t Value) {
  std::memcpy(dataFor(Addr, 8), &Value, 8);
}

//===----------------------------------------------------------------------===//
// Epochs and statistics.
//===----------------------------------------------------------------------===//

void MemorySystem::beginEpoch() {
  std::fill(EpochRequests.begin(), EpochRequests.end(), 0);
}

uint64_t MemorySystem::epochWallTime(uint64_t MaxProcCycles) const {
  uint64_t Busiest = 0;
  for (uint64_t R : EpochRequests)
    Busiest = std::max(Busiest, R);
  uint64_t ServiceTime = Busiest * Config.Costs.MemServiceCycles;
  return std::max(MaxProcCycles, ServiceTime);
}

void MemorySystem::flushCachesAndTlbs() {
  for (auto &P : Procs) {
    P->L1.flush();
    P->L2.flush();
    P->Dtlb.flush();
  }
  Dir.clear();
}
