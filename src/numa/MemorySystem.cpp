//===- numa/MemorySystem.cpp - CC-NUMA memory hierarchy model -------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "numa/MemorySystem.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "fault/Injector.h"
#include "support/Error.h"

using namespace dsm;
using namespace dsm::numa;

MemorySystem::MemorySystem(const MachineConfig &Config)
    : Config(Config), Topo(Config), Frames(Config),
      Dir(Config.numProcs()) {
  Procs.reserve(Config.numProcs());
  for (int P = 0; P < Config.numProcs(); ++P)
    Procs.push_back(std::make_unique<ProcState>(Config));
  EpochRequests.assign(Config.NumNodes, 0);
}

//===----------------------------------------------------------------------===//
// Virtual-memory management.
//===----------------------------------------------------------------------===//

uint64_t MemorySystem::allocVirtual(uint64_t Bytes, uint64_t Align) {
  assert(Align > 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  NextVirtual = (NextVirtual + Align - 1) & ~(Align - 1);
  uint64_t Addr = NextVirtual;
  NextVirtual += Bytes;
  // Pad so distinct allocations never share a page: physical placement
  // is per-page and we do not want accidental inter-array page sharing
  // to depend on allocation order.
  NextVirtual =
      (NextVirtual + Config.PageSize - 1) & ~(Config.PageSize - 1);
  return Addr;
}

uint64_t MemorySystem::allocOnNode(uint64_t Bytes, int Node) {
  uint64_t Addr = allocVirtual(Bytes, Config.PageSize);
  placeRange(Addr, Bytes, Node, FrameMode::Colored);
  return Addr;
}

std::optional<PhysMem::Allocation>
MemorySystem::allocFrame(int Pref, uint64_t VPage, FrameMode Mode,
                         bool AvoidPref) {
  unsigned MaxHop =
      std::bit_width(static_cast<unsigned>(Config.NumNodes));
  int Passes = Inj ? 2 : 1;
  for (int Pass = 0; Pass < Passes; ++Pass) {
    for (unsigned Hop = 0; Hop <= MaxHop; ++Hop) {
      for (int N = 0; N < Config.NumNodes; ++N) {
        unsigned H = static_cast<unsigned>(
            std::popcount(static_cast<unsigned>(N) ^
                          static_cast<unsigned>(Pref)));
        if (H != Hop)
          continue;
        if (AvoidPref && N == Pref)
          continue;
        if (Pass == 0 && Inj &&
            (Inj->overFrameCap(N, Frames.framesUsed(N)) ||
             DSM_BUGGIFY(Inj->buggify(), "phys_full",
                         VPage * 31 + static_cast<uint64_t>(N))))
          continue; // Buggify: pretend N is full; take the spill pass.
        if (auto A = Frames.allocOn(N, VPage, Mode)) {
          if (Pass == 1) {
            // Every node was over its soft cap; breach it rather than
            // fail -- the cap is a fault hint, not a hard limit.
            ++Inj->counters().CapacityOverflows;
            if (Obs)
              Obs->onFaultInjected("capacity_overflow", VPage, N);
          }
          return A;
        }
      }
    }
  }
  return std::nullopt;
}

void MemorySystem::makeUnbacked(PageInfo &PI, uint64_t VPage,
                                int HomeNode) {
  // Pseudo physical page index past every real frame keeps cache and
  // directory indexing collision-free:
  //   physBase(Node, Frame) == (NumNodes * FramesPerNode + Seq) * PageSize
  uint64_t FPN = Frames.framesPerNode();
  PI.Node = HomeNode;
  PI.Frame =
      (static_cast<uint64_t>(Config.NumNodes - HomeNode)) * FPN +
      OverflowSeq++;
  PI.Mapped = true;
  PI.Backed = false;
  if (Inj)
    ++Inj->counters().CapacityOverflows;
  if (Obs)
    Obs->onFaultInjected("unbacked_page", VPage, HomeNode);
}

void MemorySystem::placePage(uint64_t VPage, int Node, FrameMode Mode) {
  assert(Node >= 0 && Node < Config.NumNodes && "node out of range");
  PageInfo &PI = Pages[VPage];
  bool AvoidPref = false;
  // denyPlacePage always runs first so PlaceSeq advances identically
  // whether or not the buggify layer is armed.
  if (Inj && (Inj->denyPlacePage(VPage, Node) ||
              DSM_BUGGIFY(Inj->buggify(), "place_deny", VPage))) {
    ++Inj->counters().PlacementsDenied;
    if (Obs)
      Obs->onFaultInjected("place_denied", VPage, Node);
    if (PI.Mapped)
      return; // Denied re-placement: the page stays where it is.
    AvoidPref = true; // Fall back to a neighbor by topology distance.
  }
  if (PI.Mapped && PI.Node == Node)
    return;
  bool HadOld = PI.Mapped && PI.Backed;
  int OldNode = PI.Node;
  uint64_t OldFrame = PI.Frame;
  if (HadOld)
    Frames.free(OldNode, OldFrame);
  std::optional<PhysMem::Allocation> A =
      allocFrame(Node, VPage, Mode, AvoidPref);
  if (!A) {
    if (HadOld) {
      // Machine full: keep the old backing (placement is only a hint).
      bool Repinned = Frames.allocSpecific(OldNode, OldFrame);
      assert(Repinned && "frame taken while page owned it");
      (void)Repinned;
      return;
    }
    if (PI.Mapped)
      return; // Already unbacked; nothing to improve.
    makeUnbacked(PI, VPage, Node);
    return;
  }
  PI.Node = A->Node;
  PI.Frame = A->Frame;
  PI.Mapped = true;
  PI.Backed = true;
  if (Inj && A->Node != Node) {
    ++Inj->counters().PlacementFallbacks;
    if (Obs)
      Obs->onFaultInjected("place_fallback", VPage, A->Node);
  }
  if (Obs)
    Obs->onPagePlace(VPage, A->Node, Mode == FrameMode::Colored);
}

void MemorySystem::placeRange(uint64_t Addr, uint64_t Bytes, int Node,
                              FrameMode Mode) {
  if (Bytes == 0)
    return;
  uint64_t First = pageOf(Addr);
  uint64_t Last = pageOf(Addr + Bytes - 1);
  for (uint64_t VPage = First; VPage <= Last; ++VPage)
    placePage(VPage, Node, Mode);
}

bool MemorySystem::migratePage(uint64_t VPage, int NewNode) {
  auto It = Pages.find(VPage);
  if (It == Pages.end() || !It->second.Mapped) {
    placePage(VPage, NewNode, FrameMode::Hashed);
    return true;
  }
  PageInfo &PI = It->second;
  if (PI.Node == NewNode)
    return true;
  if (Inj && (Inj->denyMigratePage(VPage, NewNode) ||
              DSM_BUGGIFY(Inj->buggify(), "migrate_deny", VPage))) {
    ++Inj->counters().MigrationsDenied;
    if (Obs)
      Obs->onFaultInjected("migrate_denied", VPage, NewNode);
    return false;
  }

  // Shoot down stale translations and cached lines under the old
  // physical address.
  uint64_t OldPhysBase = Frames.physBase(PI.Node, PI.Frame);
  for (auto &P : Procs) {
    P->Dtlb.invalidate(VPage);
    for (uint64_t Off = 0; Off < Config.PageSize;
         Off += Config.L1.LineBytes)
      P->L1.invalidate(OldPhysBase + Off);
    for (uint64_t Off = 0; Off < Config.PageSize;
         Off += Config.L2.LineBytes)
      P->L2.invalidate(OldPhysBase + Off);
  }
  for (uint64_t Off = 0; Off < Config.PageSize; Off += Config.L2.LineBytes)
    Dir.erase(OldPhysBase + Off);

  int OldNode = PI.Node;
  bool HadOld = PI.Backed;
  uint64_t OldFrame = PI.Frame;
  if (HadOld)
    Frames.free(OldNode, OldFrame);
  std::optional<PhysMem::Allocation> A =
      allocFrame(NewNode, VPage, FrameMode::Hashed, /*AvoidPref=*/false);
  if (!A) {
    // Machine full: the move fails, the page keeps its old backing.
    if (HadOld) {
      bool Repinned = Frames.allocSpecific(OldNode, OldFrame);
      assert(Repinned && "frame taken while page owned it");
      (void)Repinned;
    }
    if (Inj)
      ++Inj->counters().CapacityOverflows;
    if (Obs)
      Obs->onFaultInjected("capacity_overflow", VPage, NewNode);
    return false;
  }
  PI.Node = A->Node;
  PI.Frame = A->Frame;
  PI.Backed = true;
  ++Stats.PageMigrations;
  if (Obs)
    Obs->onPageMigrate(VPage, OldNode, A->Node);
  return true;
}

int MemorySystem::pageHomeNode(uint64_t VPage) const {
  auto It = Pages.find(VPage);
  if (It == Pages.end() || !It->second.Mapped)
    return -1;
  return It->second.Node;
}

uint64_t MemorySystem::pagesOnNode(int Node) const {
  uint64_t N = 0;
  for (const auto &[VPage, PI] : Pages)
    if (PI.Mapped && PI.Node == Node)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Simulated accesses.
//===----------------------------------------------------------------------===//

MemorySystem::PageInfo &MemorySystem::faultIn(uint64_t VPage, int Proc,
                                              uint64_t &Cycles) {
  PageInfo &PI = Pages[VPage];
  if (PI.Mapped)
    return PI;
  ++Stats.PageFaults;
  Cycles += Config.Costs.PageFaultCycles;
  int Node;
  if (DefaultPolicy == PlacementPolicy::FirstTouch) {
    Node = nodeOfProc(Proc);
  } else {
    Node = static_cast<int>(RoundRobinNext++ %
                            static_cast<uint64_t>(Config.NumNodes));
  }
  std::optional<PhysMem::Allocation> A =
      allocFrame(Node, VPage, FrameMode::Hashed, /*AvoidPref=*/false);
  if (!A) {
    makeUnbacked(PI, VPage, Node);
    if (Obs)
      Obs->onPageFault(VPage, Node, Proc);
    return PI;
  }
  PI.Node = A->Node;
  PI.Frame = A->Frame;
  PI.Mapped = true;
  PI.Backed = true;
  if (Inj && A->Node != Node &&
      Inj->overFrameCap(Node, Frames.framesUsed(Node))) {
    // A soft cap on the policy's choice redirected this fault.
    ++Inj->counters().PlacementFallbacks;
    if (Obs)
      Obs->onFaultInjected("place_fallback", VPage, A->Node);
  }
  if (Obs)
    Obs->onPageFault(VPage, A->Node, Proc);
  return PI;
}

bool MemorySystem::invalidateLineEverywhere(int Proc, uint64_t PhysLine) {
  ProcState &P = *Procs[Proc];
  bool Dirty = P.L2.invalidate(PhysLine);
  for (uint64_t Off = 0; Off < Config.L2.LineBytes;
       Off += Config.L1.LineBytes)
    Dirty |= P.L1.invalidate(PhysLine + Off);
  return Dirty;
}

uint64_t MemorySystem::coherenceAction(int Proc, uint64_t PhysLine,
                                       bool IsWrite, int HomeNode,
                                       bool PaidMemLatency,
                                       uint64_t VAddr) {
  DirEntry &E = Dir.entry(PhysLine);
  uint64_t Extra = 0;

  if (!IsWrite) {
    if (E.Owner == Proc || E.hasSharer(Proc))
      return 0;
    if (E.Owner != -1) {
      // Dirty (or exclusive) copy elsewhere: 3-hop intervention, the
      // owner writes back and downgrades to shared.
      Extra += Config.Costs.DirtyIntervention;
      ++Stats.DirtyInterventions;
      ProcState &O = *Procs[E.Owner];
      bool WasDirty = O.L2.cleanLine(PhysLine);
      for (uint64_t Off = 0; Off < Config.L2.LineBytes;
           Off += Config.L1.LineBytes)
        WasDirty |= O.L1.cleanLine(PhysLine + Off);
      if (WasDirty) {
        ++Stats.Writebacks;
        ++EpochRequests[HomeNode];
      }
      E.Owner = -1;
    }
    bool SoleSharer = true;
    E.forEachSharer(Proc, [&](int) { SoleSharer = false; });
    E.addSharer(Proc, Dir.numWords());
    if (SoleSharer && E.Owner == -1)
      E.Owner = Proc; // MESI exclusive grant: later write is silent.
    return Extra;
  }

  // Write path.
  if (E.Owner == Proc)
    return 0;
  unsigned NumInvalidated = 0;
  E.forEachSharer(Proc, [&](int Q) {
    if (invalidateLineEverywhere(Q, PhysLine)) {
      ++Stats.Writebacks;
      ++EpochRequests[HomeNode];
    }
    ++NumInvalidated;
  });
  Stats.Invalidations += NumInvalidated;
  if (Obs && NumInvalidated)
    Obs->onInvalidations(VAddr, NumInvalidated);
  if (!PaidMemLatency) {
    // Upgrade transaction to the home directory.
    Extra += Topo.memoryLatency(nodeOfProc(Proc), HomeNode);
    ++EpochRequests[HomeNode];
  }
  E.clearSharers();
  E.addSharer(Proc, Dir.numWords());
  E.Owner = Proc;
  return Extra;
}

uint64_t MemorySystem::access(int Proc, uint64_t Addr, unsigned Bytes,
                              bool IsWrite) {
  assert(Proc >= 0 && Proc < numProcs() && "processor out of range");
  assert(Bytes > 0 && Bytes <= 8 && Addr % Bytes == 0 &&
         "simulated accesses must be naturally aligned");
  const CostModel &Costs = Config.Costs;
  uint64_t Cycles = 0;
  uint64_t VPage = pageOf(Addr);
  ProcState &P = *Procs[Proc];

  if (IsWrite)
    ++Stats.Stores;
  else
    ++Stats.Loads;

  // Address translation.
  if (!P.Dtlb.access(VPage)) {
    ++Stats.TlbMisses;
    uint64_t MissCycles = Costs.TlbMiss;
    if (Inj && (Inj->failTlbFill(Proc, VPage) ||
                DSM_BUGGIFY(Inj->buggify(), "tlb_retry", VPage))) {
      // Transient fill failure: the walk is retried, doubling the
      // penalty.  Translation still succeeds -- only cycles change.
      MissCycles += Costs.TlbMiss;
      ++Inj->counters().TlbFillRetries;
      if (Obs)
        Obs->onFaultInjected("tlb_retry", VPage, nodeOfProc(Proc));
    }
    Cycles += MissCycles;
    Stats.TlbMissCycles += MissCycles;
    if (Obs)
      Obs->onTlbMiss(Proc, Addr);
  }
  PageInfo *PIPtr;
  if (P.LastVPage == VPage) {
    PIPtr = P.LastPI;
  } else {
    PIPtr = &faultIn(VPage, Proc, Cycles);
    P.LastVPage = VPage;
    P.LastPI = PIPtr;
  }
  PageInfo &PI = *PIPtr;
  uint64_t Phys =
      Frames.physBase(PI.Node, PI.Frame) + Addr % Config.PageSize;
  uint64_t PhysLine = Phys & ~(Config.L2.LineBytes - 1);
  int HomeNode = PI.Node;
  int MyNode = nodeOfProc(Proc);

  // Primary cache.
  CacheAccessResult R1 = P.L1.access(Phys, IsWrite);
  if (R1.Hit) {
    Cycles += Costs.L1Hit;
    Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                              /*PaidMemLatency=*/false, Addr);
    return Cycles;
  }
  ++Stats.L1Misses;
  if (R1.Evicted && R1.EvictedDirty) {
    // Dirty L1 victim folds into L2; if L2 already lost it, it goes to
    // its home memory.
    if (P.L2.contains(R1.EvictedLineAddr)) {
      P.L2.access(R1.EvictedLineAddr, /*IsWrite=*/true);
    } else {
      uint64_t VictimHome =
          R1.EvictedLineAddr /
          (Frames.framesPerNode() * Config.PageSize);
      ++Stats.Writebacks;
      if (VictimHome < static_cast<uint64_t>(Config.NumNodes))
        ++EpochRequests[VictimHome];
    }
  }

  // Secondary cache.
  CacheAccessResult R2 = P.L2.access(Phys, IsWrite);
  if (R2.Hit) {
    Cycles += Costs.L2Hit;
    Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                              /*PaidMemLatency=*/false, Addr);
    Stats.MemStallCycles += Cycles > Costs.L1Hit ? Cycles - Costs.L1Hit : 0;
    return Cycles;
  }
  ++Stats.L2Misses;
  if (R2.Evicted) {
    uint64_t Victim = R2.EvictedLineAddr;
    if (DirEntry *VE = Dir.lookup(Victim)) {
      VE->removeSharer(Proc);
      if (VE->Owner == Proc)
        VE->Owner = -1;
    }
    bool VictimDirty = R2.EvictedDirty;
    for (uint64_t Off = 0; Off < Config.L2.LineBytes;
         Off += Config.L1.LineBytes)
      VictimDirty |= P.L1.invalidate(Victim + Off);
    if (VictimDirty) {
      uint64_t VictimHome =
          Victim / (Frames.framesPerNode() * Config.PageSize);
      ++Stats.Writebacks;
      if (VictimHome < static_cast<uint64_t>(Config.NumNodes))
        ++EpochRequests[VictimHome];
    }
  }

  // Memory (through the home node's hub/directory).
  uint64_t Latency = Topo.memoryLatency(MyNode, HomeNode);
  if (Inj) {
    if (uint64_t Spike = Inj->drawLatencySpike(MyNode, HomeNode)) {
      Latency += Spike;
      ++Inj->counters().LatencySpikes;
      Inj->counters().LatencySpikeCycles += Spike;
      if (Obs)
        Obs->onFaultInjected("latency_spike", VPage, HomeNode);
    }
  }
  Cycles += Costs.L2Hit + Latency;
  if (HomeNode == MyNode)
    ++Stats.LocalMemAccesses;
  else
    ++Stats.RemoteMemAccesses;
  ++EpochRequests[HomeNode];
  if (Obs)
    Obs->onMemAccess(Proc, MyNode, HomeNode, Addr, IsWrite);
  Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                            /*PaidMemLatency=*/true, Addr);
  Stats.MemStallCycles += Cycles > Costs.L1Hit ? Cycles - Costs.L1Hit : 0;
  return Cycles;
}

uint64_t MemorySystem::batchAccess(int Proc, uint64_t Addr, unsigned Bytes,
                                   bool IsWrite, BatchAccess &Site) {
  uint64_t VPage = pageOf(Addr);
  ProcState &P = *Procs[Proc];

  // Fast path: the access is provably a pure L1 hit whose directory
  // action is a no-op.  The proof obligations, in order:
  //  - same page as the site's cached translation, so Phys is exact;
  //  - still the coherence unit the site settled on, so the directory
  //    already records Proc as sharer (reads) / owner (writes) --
  //    nothing this processor did since can have changed that without
  //    evicting the line from L2, and L2 eviction sweeps the L1
  //    sublines (inclusive hierarchy), which the L1 probe catches;
  //  - the TLB's MRU entry is this page (so the committed access()
  //    below is guaranteed a hit) and the L1 actually hits.
  // L1.accessIfHit commits the hit (clock tick, LRU stamp, dirty bit)
  // in the same call that proves it; a miss touches nothing, and the
  // fall-through access() then performs the one real access.  The
  // skipped work -- page-table memo, physBase recomputation, and the
  // settled coherenceAction -- is all provably state- and cost-free.
  // Buggify (host-only tag): force the committed slow path for an
  // otherwise-eligible access.  Equivalence of the two paths is the
  // memo's core invariant, so firing is unobservable in the simulation
  // -- which is exactly what the swarm oracle then proves.  The check
  // runs last so it only draws when the fast path would be taken.
  if (VPage == Site.VPage &&
      (IsWrite ? Site.WriteSettled : Site.ReadSettled) &&
      P.Dtlb.mruContains(VPage) &&
      !(Inj && DSM_BUGGIFY(Inj->buggify(), "batch_slow", Addr))) {
    uint64_t Phys = Addr + Site.PhysMinusVirt;
    if ((Phys & ~(Config.L2.LineBytes - 1)) == Site.PhysL2Line &&
        P.L1.accessIfHit(Phys, IsWrite)) {
      if (IsWrite)
        ++Stats.Stores;
      else
        ++Stats.Loads;
      P.Dtlb.access(VPage);
      return Config.Costs.L1Hit;
    }
  }

  // Slow path: the real pipeline, then re-prime the site from the
  // per-processor page memo access() just refreshed.
  uint64_t Cycles = access(Proc, Addr, Bytes, IsWrite);
  const PageInfo &PI = *P.LastPI;
  Site.VPage = VPage;
  Site.PhysMinusVirt =
      Frames.physBase(PI.Node, PI.Frame) - VPage * Config.PageSize;
  Site.PhysL2Line =
      (Addr + Site.PhysMinusVirt) & ~(Config.L2.LineBytes - 1);
  Site.ReadSettled = true;
  Site.WriteSettled = IsWrite;
  return Cycles;
}

unsigned MemorySystem::openRun(int Proc, RunWindow &W, uint64_t MaxIters) {
  // A fault injector must see every access (fault-armed pages, buggify
  // draws keyed per access); batching is wholesale-disabled then.
  if (Inj || W.NumSites <= 0 || MaxIters == 0)
    return 0;
  ProcState &P = *Procs[Proc];
  const uint64_t L1Line = Config.L1.LineBytes;
  const uint64_t L2Line = Config.L2.LineBytes;
  uint64_t Cap = MaxIters;
  for (int I = 0; I < W.NumSites; ++I) {
    RunSite &S = W.Sites[I];
    BatchAccess &M = *S.Site;
    // The same settled-coherence proof as batchAccess's fast path: the
    // memo's page translation is exact and the directory already
    // records Proc for this coherence unit.
    uint64_t VPage = pageOf(S.Addr);
    if (VPage != M.VPage || !(S.IsWrite ? M.WriteSettled : M.ReadSettled))
      return 0;
    uint64_t Phys = S.Addr + M.PhysMinusVirt;
    if ((Phys & ~(L2Line - 1)) != M.PhysL2Line)
      return 0;
    // Residency: the whole window must be pure hits.  The scalar path
    // tolerates TLB scan hits (non-MRU), so a plain resident entry is
    // enough; its index is cached across windows and revalidated.
    if (P.Dtlb.pageAt(M.TlbIdx) != VPage) {
      M.TlbIdx = P.Dtlb.findEntry(VPage);
      if (M.TlbIdx == SIZE_MAX)
        return 0;
    }
    if (!P.L1.contains(Phys))
      return 0;
    S.VPage = VPage;
    S.Phys = Phys;
    // The run ends at the current L1 line's edge: the next line's
    // residency is unknown (and, measured, almost never resident when
    // this site is the sweep's leading edge -- probing it is pure
    // overhead), and staying inside the L1 line also stays inside the
    // settled L2 line.  Runs that outlive the window continue through
    // the runAccess per-access tier instead.
    uint64_t ToLineEnd = (L1Line - (Phys & (L1Line - 1))) / 8;
    Cap = std::min(Cap, ToLineEnd);
  }
  W.PreMruPage = P.Dtlb.mruPage();
  return static_cast<unsigned>(Cap);
}

uint64_t MemorySystem::commitRun(int Proc, RunWindow &W, unsigned FullIters,
                                 int PartialSites) {
  const int S = W.NumSites;
  const uint64_t NAcc = uint64_t(FullIters) * S + PartialSites;
  if (NAcc == 0)
    return 0;
  ProcState &P = *Procs[Proc];

  // Counters: every access is a Load or Store; nothing else moves on a
  // pure-hit access (no misses, no memory requests, no observer/fault
  // hooks -- those exist only on slow paths).
  uint64_t Loads = 0, Stores = 0;
  for (int I = 0; I < S; ++I)
    (W.Sites[I].IsWrite ? Stores : Loads) += FullIters + (I < PartialSites);
  Stats.Loads += Loads;
  Stats.Stores += Stores;

  // L1 and TLB LRU stamps.  In the interleaved scalar sequence, access
  // number k (1-based) stamps its line and TLB entry with clock+k; only
  // the LAST access per line / per TLB entry survives.  A site's run
  // may cross L1 lines (the settled L2 line bounds it, openRun verified
  // every touched line resident), so per site each touched line gets
  // one stamp event at the site's last access on it, 1-based position
  // j*S + I + 1 for iteration j.  Events are applied in ascending
  // position order with plain assignment, so collisions on a line
  // shared by several sites resolve exactly as the scalar sequence
  // would; then each clock advances once for all NAcc ticks.
  struct StampEvent {
    uint64_t Pos;
    uint64_t Addr;
    bool IsWrite;
  };
  StampEvent Events[RunWindow::MaxSites * 16];
  int NumEvents = 0;
  const uint64_t L1Line = Config.L1.LineBytes;
  assert(Config.L2.LineBytes / L1Line <= 16 &&
         "StampEvent buffer sized for <= 16 L1 lines per L2 line");
  for (int I = 0; I < S; ++I) {
    uint64_t N = FullIters + (I < PartialSites);
    if (N == 0)
      continue;
    const uint64_t Phys = W.Sites[I].Phys;
    for (uint64_t J = 0; J < N;) {
      // Last iteration still on the current L1 line.
      uint64_t LineEnd = (Phys + 8 * J) | (L1Line - 1);
      uint64_t JLast = std::min(N - 1, (LineEnd + 1 - Phys) / 8 - 1);
      Events[NumEvents++] = {JLast * S + I + 1, Phys + 8 * JLast,
                             W.Sites[I].IsWrite};
      J = JLast + 1;
    }
  }
  // Positions are distinct (one event per (iteration, site) pair);
  // insertion sort -- a handful of events per window.
  for (int I = 1; I < NumEvents; ++I) {
    StampEvent E = Events[I];
    int J = I;
    for (; J > 0 && Events[J - 1].Pos > E.Pos; --J)
      Events[J] = Events[J - 1];
    Events[J] = E;
  }
  for (int I = 0; I < NumEvents; ++I) {
    bool Hit = P.L1.accessRun(Events[I].Addr,
                              static_cast<uint32_t>(Events[I].Pos),
                              Events[I].IsWrite);
    assert(Hit && "run window line evicted between open and commit");
    (void)Hit;
  }
  // The TLB entry is per page, constant across a site's run: one stamp
  // at the site's overall last position.  Sites past the partial cut
  // (n = Full) strictly precede sites inside it (n = Full + 1), so the
  // two loops apply stamps in ascending position order.
  auto StampTlb = [&](int I) {
    uint32_t N = FullIters + (I < PartialSites);
    if (N == 0)
      return;
    uint32_t Pos = (N - 1) * static_cast<uint32_t>(S) +
                   static_cast<uint32_t>(I) + 1;
    P.Dtlb.runStamp(W.Sites[I].Site->TlbIdx, Pos);
  };
  for (int I = PartialSites; I < S; ++I)
    StampTlb(I);
  for (int I = 0; I < PartialSites; ++I)
    StampTlb(I);
  P.L1.advanceClock(static_cast<uint32_t>(NAcc));
  P.Dtlb.advanceClock(static_cast<uint32_t>(NAcc));
  int LastSite = PartialSites > 0 ? PartialSites - 1 : S - 1;
  P.Dtlb.setMru(W.Sites[LastSite].Site->TlbIdx);

  // Fast/slow classification.  A scalar access takes batchAccess's fast
  // path iff the TLB MRU already holds its page, i.e. iff the
  // immediately preceding access (in global order) touched the same
  // page; otherwise it goes through the committed access() pipeline --
  // still a pure hit (TLB scan hit, L1 hit, settled no-op coherence;
  // same cycles and counters) but with two extra memo side effects
  // reproduced here: the per-processor page memo and the site's
  // settled-flag re-prime.
  auto SlowAt = [&](uint64_t J, int I) {
    uint64_t PrevPage = I > 0        ? W.Sites[I - 1].VPage
                        : J > 0      ? W.Sites[S - 1].VPage
                                     : W.PreMruPage;
    return W.Sites[I].VPage != PrevPage;
  };
  // Site memos: a slow access re-primes ReadSettled=true,
  // WriteSettled=IsWrite (translation fields recompute to identical
  // values inside the settled line).  Steady-state slowness depends
  // only on the site, so checking iterations 0 and 1 covers all.
  for (int I = 0; I < S; ++I) {
    uint32_t N = FullIters + (I < PartialSites);
    if (N == 0)
      continue;
    if (SlowAt(0, I) || (N > 1 && SlowAt(1, I))) {
      W.Sites[I].Site->ReadSettled = true;
      W.Sites[I].Site->WriteSettled = W.Sites[I].IsWrite;
    }
  }
  // Page memo: page of the last slow access, if any.  When any site
  // pair disagrees on page, every iteration has a slow access and this
  // scan exits within one iteration's worth of positions; when all
  // sites share one page, only position 1 can be slow.
  for (uint64_t Pos = NAcc; Pos > 0; --Pos) {
    uint64_t J = (Pos - 1) / S;
    int I = static_cast<int>((Pos - 1) % S);
    if (SlowAt(J, I)) {
      P.LastVPage = W.Sites[I].VPage;
      P.LastPI = &Pages[W.Sites[I].VPage];
      break;
    }
  }
  return NAcc * Config.Costs.L1Hit;
}

uint64_t MemorySystem::runAccess(int Proc, uint64_t Addr, unsigned Bytes,
                                 bool IsWrite, BatchAccess &Site) {
  // Fault-armed pages and buggify draws must see the scalar path.
  if (Inj)
    return batchAccess(Proc, Addr, Bytes, IsWrite, Site);
  ProcState &P = *Procs[Proc];
  uint64_t Phys = Addr + Site.PhysMinusVirt; // exact iff still on VPage
  // Two fast-path tiers, both requiring the settled flag for the
  // access kind and a TLB entry still mapping the page:
  //  - same cached L1 line: pins everything positional (the page, so
  //    Phys is exact and the TLB comparison is against the right page,
  //    and the settled L2 line), and accessVia commits the hit in the
  //    same call that proves it, touching nothing on failure;
  //  - new L1 line inside the settled L2 line (the run crossing an L1
  //    line boundary): exactly batchAccess's fast-path proof -- same
  //    128-aligned virtual block implies same page since the
  //    phys-minus-virt offset is page-aligned -- with accessIfHit
  //    committing, after which the line memo is re-primed.  The MRU
  //    obligation batchAccess carries is replaced by the cached TLB
  //    index plus the replay below.
  if ((IsWrite ? Site.WriteSettled : Site.ReadSettled) &&
      P.Dtlb.pageAt(Site.TlbIdx) == Site.VPage) {
    bool Hit;
    if ((Phys & ~(Config.L1.LineBytes - 1)) == Site.LineBase) {
      Hit = P.L1.accessVia(Site.L1Way, Phys, IsWrite);
    } else if ((Phys & ~(Config.L2.LineBytes - 1)) == Site.PhysL2Line &&
               P.L1.accessIfHit(Phys, IsWrite)) {
      Hit = true;
      Site.L1Way = P.L1.wayHandle(Phys);
      Site.LineBase = Phys & ~(Config.L1.LineBytes - 1);
    } else {
      Hit = false;
    }
    if (Hit) {
      if (IsWrite)
        ++Stats.Stores;
      else
        ++Stats.Loads;
      // The TLB hit is identical for both scalar pipelines (clock
      // tick, stamp, MRU install); which pipeline the scalar reference
      // takes depends on whether the MRU entry already held the page.
      bool WasMru = P.Dtlb.mruIs(Site.TlbIdx);
      P.Dtlb.accessAt(Site.TlbIdx);
      if (!WasMru) {
        // The scalar reference rejects batchAccess's fast path here
        // (MRU miss) and runs the committed access() pipeline -- same
        // cycles and counters on a pure hit, plus two memo side
        // effects replayed from the run memo's cached pointers: the
        // per-processor page memo and the site's settled-flag
        // re-prime.
        if (P.LastVPage != Site.VPage) {
          P.LastVPage = Site.VPage;
          P.LastPI = static_cast<PageInfo *>(Site.PI);
        }
        Site.ReadSettled = true;
        Site.WriteSettled = IsWrite;
      }
      return Config.Costs.L1Hit;
    }
  }
  // Reference pipeline, then refresh the run memo from its outcome: the
  // access just performed leaves its line resident, its page in the
  // TLB, and its PageInfo allocated.
  uint64_t Cycles = batchAccess(Proc, Addr, Bytes, IsWrite, Site);
  Phys = Addr + Site.PhysMinusVirt;
  Site.L1Way = P.L1.wayHandle(Phys);
  Site.LineBase = Site.L1Way ? Phys & ~(Config.L1.LineBytes - 1) : 1;
  Site.TlbIdx = P.Dtlb.findEntry(Site.VPage);
  Site.PI = &Pages[Site.VPage];
  return Cycles;
}

//===----------------------------------------------------------------------===//
// Functional data.
//===----------------------------------------------------------------------===//

uint8_t *MemorySystem::funcPageData(uint64_t VPage) const {
  std::lock_guard<std::mutex> Lock(DataMu);
  auto It = Data.find(VPage);
  if (It == Data.end()) {
    auto Page = std::make_unique<uint8_t[]>(Config.PageSize);
    std::memset(Page.get(), 0, Config.PageSize);
    It = Data.emplace(VPage, std::move(Page)).first;
  }
  return It->second.get();
}

uint8_t *MemorySystem::dataFor(uint64_t Addr, unsigned Bytes) const {
  uint64_t VPage = Addr / Config.PageSize;
  uint64_t Off = Addr % Config.PageSize;
  assert(Off + Bytes <= Config.PageSize && "access crosses a page");
  (void)Bytes;
  return funcPageData(VPage) + Off;
}

double MemorySystem::readF64(uint64_t Addr) const {
  double V;
  std::memcpy(&V, dataFor(Addr, 8), 8);
  return V;
}

void MemorySystem::writeF64(uint64_t Addr, double Value) {
  std::memcpy(dataFor(Addr, 8), &Value, 8);
}

int64_t MemorySystem::readI64(uint64_t Addr) const {
  int64_t V;
  std::memcpy(&V, dataFor(Addr, 8), 8);
  return V;
}

void MemorySystem::writeI64(uint64_t Addr, int64_t Value) {
  std::memcpy(dataFor(Addr, 8), &Value, 8);
}

//===----------------------------------------------------------------------===//
// Epochs and statistics.
//===----------------------------------------------------------------------===//

void MemorySystem::beginEpoch() {
  std::fill(EpochRequests.begin(), EpochRequests.end(), 0);
}

uint64_t MemorySystem::epochWallTime(uint64_t MaxProcCycles) const {
  uint64_t Busiest = 0;
  for (uint64_t R : EpochRequests)
    Busiest = std::max(Busiest, R);
  uint64_t ServiceTime = Busiest * Config.Costs.MemServiceCycles;
  return std::max(MaxProcCycles, ServiceTime);
}

void MemorySystem::flushCachesAndTlbs() {
  for (auto &P : Procs) {
    P->L1.flush();
    P->L2.flush();
    P->Dtlb.flush();
  }
  Dir.clear();
}
