//===- numa/MemorySystem.cpp - CC-NUMA memory hierarchy model -------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "numa/MemorySystem.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "support/Error.h"

using namespace dsm;
using namespace dsm::numa;

MemorySystem::MemorySystem(const MachineConfig &Config)
    : Config(Config), Topo(Config), Frames(Config),
      Dir(Config.numProcs()) {
  Procs.reserve(Config.numProcs());
  for (int P = 0; P < Config.numProcs(); ++P)
    Procs.push_back(std::make_unique<ProcState>(Config));
  EpochRequests.assign(Config.NumNodes, 0);
}

//===----------------------------------------------------------------------===//
// Virtual-memory management.
//===----------------------------------------------------------------------===//

uint64_t MemorySystem::allocVirtual(uint64_t Bytes, uint64_t Align) {
  assert(Align > 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  NextVirtual = (NextVirtual + Align - 1) & ~(Align - 1);
  uint64_t Addr = NextVirtual;
  NextVirtual += Bytes;
  // Pad so distinct allocations never share a page: physical placement
  // is per-page and we do not want accidental inter-array page sharing
  // to depend on allocation order.
  NextVirtual =
      (NextVirtual + Config.PageSize - 1) & ~(Config.PageSize - 1);
  return Addr;
}

uint64_t MemorySystem::allocOnNode(uint64_t Bytes, int Node) {
  uint64_t Addr = allocVirtual(Bytes, Config.PageSize);
  placeRange(Addr, Bytes, Node, FrameMode::Colored);
  return Addr;
}

void MemorySystem::placePage(uint64_t VPage, int Node, FrameMode Mode) {
  assert(Node >= 0 && Node < Config.NumNodes && "node out of range");
  PageInfo &PI = Pages[VPage];
  if (PI.Mapped) {
    if (PI.Node == Node)
      return;
    Frames.free(PI.Node, PI.Frame);
  }
  PhysMem::Allocation A = Frames.alloc(Node, VPage, Mode);
  PI.Node = A.Node;
  PI.Frame = A.Frame;
  PI.Mapped = true;
  if (Obs)
    Obs->onPagePlace(VPage, A.Node, Mode == FrameMode::Colored);
}

void MemorySystem::placeRange(uint64_t Addr, uint64_t Bytes, int Node,
                              FrameMode Mode) {
  if (Bytes == 0)
    return;
  uint64_t First = pageOf(Addr);
  uint64_t Last = pageOf(Addr + Bytes - 1);
  for (uint64_t VPage = First; VPage <= Last; ++VPage)
    placePage(VPage, Node, Mode);
}

void MemorySystem::migratePage(uint64_t VPage, int NewNode) {
  auto It = Pages.find(VPage);
  if (It == Pages.end() || !It->second.Mapped) {
    placePage(VPage, NewNode, FrameMode::Hashed);
    return;
  }
  PageInfo &PI = It->second;
  if (PI.Node == NewNode)
    return;

  // Shoot down stale translations and cached lines under the old
  // physical address.
  uint64_t OldPhysBase = Frames.physBase(PI.Node, PI.Frame);
  for (auto &P : Procs) {
    P->Dtlb.invalidate(VPage);
    for (uint64_t Off = 0; Off < Config.PageSize;
         Off += Config.L1.LineBytes)
      P->L1.invalidate(OldPhysBase + Off);
    for (uint64_t Off = 0; Off < Config.PageSize;
         Off += Config.L2.LineBytes)
      P->L2.invalidate(OldPhysBase + Off);
  }
  for (uint64_t Off = 0; Off < Config.PageSize; Off += Config.L2.LineBytes)
    Dir.erase(OldPhysBase + Off);

  int OldNode = PI.Node;
  Frames.free(PI.Node, PI.Frame);
  PhysMem::Allocation A = Frames.alloc(NewNode, VPage, FrameMode::Hashed);
  PI.Node = A.Node;
  PI.Frame = A.Frame;
  ++Stats.PageMigrations;
  if (Obs)
    Obs->onPageMigrate(VPage, OldNode, A.Node);
}

int MemorySystem::pageHomeNode(uint64_t VPage) const {
  auto It = Pages.find(VPage);
  if (It == Pages.end() || !It->second.Mapped)
    return -1;
  return It->second.Node;
}

uint64_t MemorySystem::pagesOnNode(int Node) const {
  uint64_t N = 0;
  for (const auto &[VPage, PI] : Pages)
    if (PI.Mapped && PI.Node == Node)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Simulated accesses.
//===----------------------------------------------------------------------===//

MemorySystem::PageInfo &MemorySystem::faultIn(uint64_t VPage, int Proc,
                                              uint64_t &Cycles) {
  PageInfo &PI = Pages[VPage];
  if (PI.Mapped)
    return PI;
  ++Stats.PageFaults;
  Cycles += Config.Costs.PageFaultCycles;
  int Node;
  if (DefaultPolicy == PlacementPolicy::FirstTouch) {
    Node = nodeOfProc(Proc);
  } else {
    Node = static_cast<int>(RoundRobinNext++ %
                            static_cast<uint64_t>(Config.NumNodes));
  }
  PhysMem::Allocation A = Frames.alloc(Node, VPage, FrameMode::Hashed);
  PI.Node = A.Node;
  PI.Frame = A.Frame;
  PI.Mapped = true;
  if (Obs)
    Obs->onPageFault(VPage, A.Node, Proc);
  return PI;
}

bool MemorySystem::invalidateLineEverywhere(int Proc, uint64_t PhysLine) {
  ProcState &P = *Procs[Proc];
  bool Dirty = P.L2.invalidate(PhysLine);
  for (uint64_t Off = 0; Off < Config.L2.LineBytes;
       Off += Config.L1.LineBytes)
    Dirty |= P.L1.invalidate(PhysLine + Off);
  return Dirty;
}

uint64_t MemorySystem::coherenceAction(int Proc, uint64_t PhysLine,
                                       bool IsWrite, int HomeNode,
                                       bool PaidMemLatency,
                                       uint64_t VAddr) {
  DirEntry &E = Dir.entry(PhysLine);
  uint64_t Extra = 0;

  if (!IsWrite) {
    if (E.Owner == Proc || E.hasSharer(Proc))
      return 0;
    if (E.Owner != -1) {
      // Dirty (or exclusive) copy elsewhere: 3-hop intervention, the
      // owner writes back and downgrades to shared.
      Extra += Config.Costs.DirtyIntervention;
      ++Stats.DirtyInterventions;
      ProcState &O = *Procs[E.Owner];
      bool WasDirty = O.L2.cleanLine(PhysLine);
      for (uint64_t Off = 0; Off < Config.L2.LineBytes;
           Off += Config.L1.LineBytes)
        WasDirty |= O.L1.cleanLine(PhysLine + Off);
      if (WasDirty) {
        ++Stats.Writebacks;
        ++EpochRequests[HomeNode];
      }
      E.Owner = -1;
    }
    bool SoleSharer = true;
    E.forEachSharer(Proc, [&](int) { SoleSharer = false; });
    E.addSharer(Proc, Dir.numWords());
    if (SoleSharer && E.Owner == -1)
      E.Owner = Proc; // MESI exclusive grant: later write is silent.
    return Extra;
  }

  // Write path.
  if (E.Owner == Proc)
    return 0;
  unsigned NumInvalidated = 0;
  E.forEachSharer(Proc, [&](int Q) {
    if (invalidateLineEverywhere(Q, PhysLine)) {
      ++Stats.Writebacks;
      ++EpochRequests[HomeNode];
    }
    ++NumInvalidated;
  });
  Stats.Invalidations += NumInvalidated;
  if (Obs && NumInvalidated)
    Obs->onInvalidations(VAddr, NumInvalidated);
  if (!PaidMemLatency) {
    // Upgrade transaction to the home directory.
    Extra += Topo.memoryLatency(nodeOfProc(Proc), HomeNode);
    ++EpochRequests[HomeNode];
  }
  E.clearSharers();
  E.addSharer(Proc, Dir.numWords());
  E.Owner = Proc;
  return Extra;
}

uint64_t MemorySystem::access(int Proc, uint64_t Addr, unsigned Bytes,
                              bool IsWrite) {
  assert(Proc >= 0 && Proc < numProcs() && "processor out of range");
  assert(Bytes > 0 && Bytes <= 8 && Addr % Bytes == 0 &&
         "simulated accesses must be naturally aligned");
  const CostModel &Costs = Config.Costs;
  uint64_t Cycles = 0;
  uint64_t VPage = pageOf(Addr);
  ProcState &P = *Procs[Proc];

  if (IsWrite)
    ++Stats.Stores;
  else
    ++Stats.Loads;

  // Address translation.
  if (!P.Dtlb.access(VPage)) {
    ++Stats.TlbMisses;
    Cycles += Costs.TlbMiss;
    Stats.TlbMissCycles += Costs.TlbMiss;
    if (Obs)
      Obs->onTlbMiss(Proc, Addr);
  }
  PageInfo *PIPtr;
  if (P.LastVPage == VPage) {
    PIPtr = P.LastPI;
  } else {
    PIPtr = &faultIn(VPage, Proc, Cycles);
    P.LastVPage = VPage;
    P.LastPI = PIPtr;
  }
  PageInfo &PI = *PIPtr;
  uint64_t Phys =
      Frames.physBase(PI.Node, PI.Frame) + Addr % Config.PageSize;
  uint64_t PhysLine = Phys & ~(Config.L2.LineBytes - 1);
  int HomeNode = PI.Node;
  int MyNode = nodeOfProc(Proc);

  // Primary cache.
  CacheAccessResult R1 = P.L1.access(Phys, IsWrite);
  if (R1.Hit) {
    Cycles += Costs.L1Hit;
    Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                              /*PaidMemLatency=*/false, Addr);
    return Cycles;
  }
  ++Stats.L1Misses;
  if (R1.Evicted && R1.EvictedDirty) {
    // Dirty L1 victim folds into L2; if L2 already lost it, it goes to
    // its home memory.
    if (P.L2.contains(R1.EvictedLineAddr)) {
      P.L2.access(R1.EvictedLineAddr, /*IsWrite=*/true);
    } else {
      uint64_t VictimHome =
          R1.EvictedLineAddr /
          (Frames.framesPerNode() * Config.PageSize);
      ++Stats.Writebacks;
      if (VictimHome < static_cast<uint64_t>(Config.NumNodes))
        ++EpochRequests[VictimHome];
    }
  }

  // Secondary cache.
  CacheAccessResult R2 = P.L2.access(Phys, IsWrite);
  if (R2.Hit) {
    Cycles += Costs.L2Hit;
    Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                              /*PaidMemLatency=*/false, Addr);
    Stats.MemStallCycles += Cycles > Costs.L1Hit ? Cycles - Costs.L1Hit : 0;
    return Cycles;
  }
  ++Stats.L2Misses;
  if (R2.Evicted) {
    uint64_t Victim = R2.EvictedLineAddr;
    if (DirEntry *VE = Dir.lookup(Victim)) {
      VE->removeSharer(Proc);
      if (VE->Owner == Proc)
        VE->Owner = -1;
    }
    bool VictimDirty = R2.EvictedDirty;
    for (uint64_t Off = 0; Off < Config.L2.LineBytes;
         Off += Config.L1.LineBytes)
      VictimDirty |= P.L1.invalidate(Victim + Off);
    if (VictimDirty) {
      uint64_t VictimHome =
          Victim / (Frames.framesPerNode() * Config.PageSize);
      ++Stats.Writebacks;
      if (VictimHome < static_cast<uint64_t>(Config.NumNodes))
        ++EpochRequests[VictimHome];
    }
  }

  // Memory (through the home node's hub/directory).
  uint64_t Latency = Topo.memoryLatency(MyNode, HomeNode);
  Cycles += Costs.L2Hit + Latency;
  if (HomeNode == MyNode)
    ++Stats.LocalMemAccesses;
  else
    ++Stats.RemoteMemAccesses;
  ++EpochRequests[HomeNode];
  if (Obs)
    Obs->onMemAccess(Proc, MyNode, HomeNode, Addr, IsWrite);
  Cycles += coherenceAction(Proc, PhysLine, IsWrite, HomeNode,
                            /*PaidMemLatency=*/true, Addr);
  Stats.MemStallCycles += Cycles > Costs.L1Hit ? Cycles - Costs.L1Hit : 0;
  return Cycles;
}

//===----------------------------------------------------------------------===//
// Functional data.
//===----------------------------------------------------------------------===//

uint8_t *MemorySystem::funcPageData(uint64_t VPage) const {
  std::lock_guard<std::mutex> Lock(DataMu);
  auto It = Data.find(VPage);
  if (It == Data.end()) {
    auto Page = std::make_unique<uint8_t[]>(Config.PageSize);
    std::memset(Page.get(), 0, Config.PageSize);
    It = Data.emplace(VPage, std::move(Page)).first;
  }
  return It->second.get();
}

uint8_t *MemorySystem::dataFor(uint64_t Addr, unsigned Bytes) const {
  uint64_t VPage = Addr / Config.PageSize;
  uint64_t Off = Addr % Config.PageSize;
  assert(Off + Bytes <= Config.PageSize && "access crosses a page");
  (void)Bytes;
  return funcPageData(VPage) + Off;
}

double MemorySystem::readF64(uint64_t Addr) const {
  double V;
  std::memcpy(&V, dataFor(Addr, 8), 8);
  return V;
}

void MemorySystem::writeF64(uint64_t Addr, double Value) {
  std::memcpy(dataFor(Addr, 8), &Value, 8);
}

int64_t MemorySystem::readI64(uint64_t Addr) const {
  int64_t V;
  std::memcpy(&V, dataFor(Addr, 8), 8);
  return V;
}

void MemorySystem::writeI64(uint64_t Addr, int64_t Value) {
  std::memcpy(dataFor(Addr, 8), &Value, 8);
}

//===----------------------------------------------------------------------===//
// Epochs and statistics.
//===----------------------------------------------------------------------===//

void MemorySystem::beginEpoch() {
  std::fill(EpochRequests.begin(), EpochRequests.end(), 0);
}

uint64_t MemorySystem::epochWallTime(uint64_t MaxProcCycles) const {
  uint64_t Busiest = 0;
  for (uint64_t R : EpochRequests)
    Busiest = std::max(Busiest, R);
  uint64_t ServiceTime = Busiest * Config.Costs.MemServiceCycles;
  return std::max(MaxProcCycles, ServiceTime);
}

void MemorySystem::flushCachesAndTlbs() {
  for (auto &P : Procs) {
    P->L1.flush();
    P->L2.flush();
    P->Dtlb.flush();
  }
  Dir.clear();
}
