//===- numa/Directory.h - Directory-based coherence state -------*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State storage for the hub's directory-based invalidation protocol
/// (paper Section 2).  The directory tracks, per L2-sized memory line,
/// which processors hold the line and whether one of them owns it dirty.
/// The protocol actions (invalidation, intervention, writeback costs)
/// are driven by MemorySystem; this class only keeps the sharing state.
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_DIRECTORY_H
#define DSM_NUMA_DIRECTORY_H

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dsm::numa {

/// MSI-style per-line directory entry.
struct DirEntry {
  std::vector<uint64_t> Sharers; ///< Bitmap over processors.
  int Owner = -1;                ///< Processor holding the line dirty.

  bool hasSharer(int Proc) const {
    unsigned Word = static_cast<unsigned>(Proc) / 64;
    return Word < Sharers.size() &&
           (Sharers[Word] >> (static_cast<unsigned>(Proc) % 64)) & 1;
  }
  void addSharer(int Proc, unsigned NumWords) {
    if (Sharers.size() < NumWords)
      Sharers.resize(NumWords, 0);
    Sharers[static_cast<unsigned>(Proc) / 64] |=
        1ull << (static_cast<unsigned>(Proc) % 64);
  }
  void removeSharer(int Proc) {
    unsigned Word = static_cast<unsigned>(Proc) / 64;
    if (Word < Sharers.size())
      Sharers[Word] &= ~(1ull << (static_cast<unsigned>(Proc) % 64));
  }
  void clearSharers() {
    for (uint64_t &W : Sharers)
      W = 0;
    Owner = -1;
  }
  /// Visits every sharer except \p ExceptProc.
  template <typename Fn> void forEachSharer(int ExceptProc, Fn Visit) const {
    for (unsigned Word = 0; Word < Sharers.size(); ++Word) {
      uint64_t Bits = Sharers[Word];
      while (Bits) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Bits));
        Bits &= Bits - 1;
        int Proc = static_cast<int>(Word * 64 + Bit);
        if (Proc != ExceptProc)
          Visit(Proc);
      }
    }
  }
};

/// Map from physical line address to directory entry.
class Directory {
public:
  explicit Directory(int NumProcs)
      : NumWords((static_cast<unsigned>(NumProcs) + 63) / 64) {}

  DirEntry &entry(uint64_t PhysLine) { return Entries[PhysLine]; }
  DirEntry *lookup(uint64_t PhysLine) {
    auto It = Entries.find(PhysLine);
    return It == Entries.end() ? nullptr : &It->second;
  }
  void erase(uint64_t PhysLine) { Entries.erase(PhysLine); }
  void clear() { Entries.clear(); }
  unsigned numWords() const { return NumWords; }

private:
  unsigned NumWords;
  std::unordered_map<uint64_t, DirEntry> Entries;
};

} // namespace dsm::numa

#endif // DSM_NUMA_DIRECTORY_H
