//===- numa/MemorySystem.h - CC-NUMA memory hierarchy model -----*- C++ -*-===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated Origin-2000 memory system: one global virtual address
/// space, per-node physical memory with OS page placement (first-touch,
/// round-robin, explicit placement, migration), per-processor L1/L2/TLB,
/// and a directory-based invalidation protocol.  Every simulated load
/// and store is charged cycles through access(); functional data lives
/// in a virtual-address-keyed page store so migration never moves bytes.
///
/// Bandwidth model: each node's memory/hub serves one request per
/// CostModel::MemServiceCycles.  Per-epoch request counts let the
/// execution engine stretch an epoch's wall time when a node saturates
/// (this is what flattens the first-touch transpose curve in the paper's
/// Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef DSM_NUMA_MEMORYSYSTEM_H
#define DSM_NUMA_MEMORYSYSTEM_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "numa/Cache.h"
#include "numa/Counters.h"
#include "numa/Directory.h"
#include "numa/MachineConfig.h"
#include "numa/Observer.h"
#include "numa/PhysMem.h"
#include "numa/Tlb.h"
#include "numa/Topology.h"

namespace dsm::fault {
class Injector;
} // namespace dsm::fault

namespace dsm::numa {

/// Per-call-site state for strip-mined access batching
/// (MemorySystem::batchAccess).  One instance per static access site of
/// a fused loop strip; it caches the site's current (page, page-run)
/// translation -- VPage plus the affine virtual-to-physical offset that
/// holds for every address on that page -- and whether the site's
/// coherence state has "settled" (the directory already records this
/// processor as sharer/owner, so the per-access directory lookup is a
/// provable no-op).  The descriptor is only valid while no other
/// simulated processor runs and no page is migrated or flushed, which
/// the VM guarantees by keeping its lifetime inside one strip
/// execution.
struct BatchAccess {
  uint64_t VPage = ~0ull;        ///< Cached page, ~0 when unset.
  uint64_t PhysMinusVirt = 0;    ///< Phys = Addr + PhysMinusVirt on VPage.
  uint64_t PhysL2Line = ~0ull;   ///< Coherence unit the settle applies to.
  bool ReadSettled = false;      ///< Dir already has Proc as sharer/owner.
  bool WriteSettled = false;     ///< Dir already has Proc as owner.
  // Run-continuation memo (runAccess; RunBatch engines only).  Refreshed
  // by every slow access, revalidated per use, so staleness only costs
  // the shortcut, never correctness.
  uint64_t LineBase = 1;    ///< Phys base of the cached L1 line (1 = none;
                            ///< deliberately misaligned so it never matches).
  void *L1Way = nullptr;    ///< Cache::wayHandle for LineBase's line.
  size_t TlbIdx = SIZE_MAX; ///< Tlb::findEntry index for VPage.
  void *PI = nullptr;       ///< The page's PageInfo, for the page memo.
  void reset() { *this = BatchAccess(); }
};

/// One access site's slot in a RunWindow (MemorySystem::openRun).  The
/// VM fills Site/Addr/IsWrite before each open; the translation fields
/// are cached by openRun and private to the window protocol (the TLB
/// index lives in the site memo, shared with runAccess).  Deliberately
/// uninitialized: a RunWindow lives on the VM's hot path (one per strip
/// execution), and zero-filling MaxSites slots costs more than the
/// windows save on short strips.
struct RunSite {
  BatchAccess *Site; ///< The site's strip memo.
  uint64_t Addr;     ///< Virtual address of the first access.
  bool IsWrite;
  // Filled by openRun:
  uint64_t VPage;
  uint64_t Phys;
};

/// A run-length batched window over a fused strip's access sites
/// (DESIGN.md Section 17).  The VM proves -- via openRun -- that the
/// next W iterations' accesses, 8 bytes apart per site per iteration,
/// are all pure L1 hits with settled coherence (each site's run stays
/// inside its current -- verified resident -- L1 line, and therefore
/// inside its settled L2 line), executes those iterations without
/// touching the memory system, and then commits the window with one
/// commitRun call that reproduces the scalar batchAccess sequence's
/// cycles, counters, and cache/TLB state bit-exactly via closed forms.
struct RunWindow {
  static constexpr int MaxSites = 32; ///< Matches the VM's strip cap.
  RunSite Sites[MaxSites];
  int NumSites = 0;
  /// TLB MRU page at window open; decides whether the very first access
  /// would have taken the scalar fast path (affects only memo/page-memo
  /// re-priming, never cycles).
  uint64_t PreMruPage = ~0ull;
};

/// OS page-placement policy for pages not explicitly placed.
enum class PlacementPolicy {
  FirstTouch, ///< Page allocated on the node of the faulting processor.
  RoundRobin  ///< Pages allocated round-robin across nodes.
};

/// The whole simulated memory hierarchy.
class MemorySystem {
public:
  explicit MemorySystem(const MachineConfig &Config);

  const MachineConfig &config() const { return Config; }
  int numProcs() const { return Config.numProcs(); }
  int nodeOfProc(int Proc) const { return Proc / Config.ProcsPerNode; }

  //===--------------------------------------------------------------===//
  // Virtual-memory management (the OS layer).
  //===--------------------------------------------------------------===//

  /// Reserves \p Bytes of virtual address space (no physical placement;
  /// pages fault in under the default policy on first access).
  uint64_t allocVirtual(uint64_t Bytes, uint64_t Align = 64);

  /// Reserves \p Bytes and immediately places every page on \p Node with
  /// colored frames: the per-processor pool used for reshaped arrays
  /// (paper Section 4.3).
  uint64_t allocOnNode(uint64_t Bytes, int Node);

  /// Places (or re-requests placement of) the page containing \p VPage.
  /// Re-requests override earlier ones: "a page requested by multiple
  /// processors is simply allocated from within the local memory of the
  /// processor to last request the page" (paper Section 8.3).
  ///
  /// Placement is a *hint*: under an attached fault::Injector the
  /// request may be denied (the page stays put, or -- for an unmapped
  /// page -- is placed on the nearest node by topology distance), and
  /// under memory pressure the page may end up elsewhere or unbacked.
  /// None of this affects functional data, which is virtual-keyed.
  void placePage(uint64_t VPage, int Node, FrameMode Mode);

  /// Places every page overlapping [Addr, Addr+Bytes).
  void placeRange(uint64_t Addr, uint64_t Bytes, int Node, FrameMode Mode);

  /// Moves a mapped page to \p NewNode (redistribute); charges the cost
  /// to the counters and shoots down TLBs and caches.  No-op if the page
  /// already lives there or was never mapped.  Returns false when an
  /// attached fault::Injector denied the request (a later retry may
  /// succeed) or no frame could be found; true otherwise.
  bool migratePage(uint64_t VPage, int NewNode);

  void setDefaultPolicy(PlacementPolicy P) { DefaultPolicy = P; }
  PlacementPolicy defaultPolicy() const { return DefaultPolicy; }

  /// Home node of a page, or -1 if not yet mapped.
  int pageHomeNode(uint64_t VPage) const;

  uint64_t pageSize() const { return Config.PageSize; }
  uint64_t pageOf(uint64_t Addr) const { return Addr / Config.PageSize; }

  //===--------------------------------------------------------------===//
  // Simulated accesses (performance model).
  //===--------------------------------------------------------------===//

  /// Simulates one aligned load/store of \p Bytes by \p Proc.  Returns
  /// the cycles charged to that processor.
  uint64_t access(int Proc, uint64_t Addr, unsigned Bytes, bool IsWrite);

  /// Strip-mined variant of access() used by the bytecode VM's fused
  /// loops: bit-identical cycles, counters, and cache/TLB/directory
  /// state transitions, with the per-site translation and settled
  /// coherence lookup amortized through \p Site.  The fast path covers
  /// exactly the accesses whose full pipeline is a pure L1 hit with a
  /// no-op directory action -- it still performs the real TLB and L1
  /// LRU updates -- and everything else (first touch, TLB or cache
  /// miss, unsettled coherence, page-run boundary) falls through to
  /// access(), re-priming \p Site from the result.  Observer and
  /// fault-injector hooks only exist on those slow paths, so attaching
  /// either never changes what this function observes or charges.
  uint64_t batchAccess(int Proc, uint64_t Addr, unsigned Bytes,
                       bool IsWrite, BatchAccess &Site);

  /// Run-length batched entry (ISSUE: accessRun): tries to open a
  /// batched window of up to \p MaxIters iterations over \p W's sites,
  /// where site s of iteration j accesses W.Sites[s].Addr + 8*j.
  /// Returns the window length W' (0 = not provably equivalent; caller
  /// runs scalar).  A nonzero return proves every access in the window
  /// is a pure L1 hit with resident TLB entry and settled (no-op)
  /// coherence, so the VM may run those iterations without calling
  /// batchAccess and settle the bill afterwards with commitRun.  The
  /// proof holds because nothing between open and commit touches this
  /// processor's caches, TLB, directory, or page table.  Returns 0
  /// whenever a fault injector is attached (fault-armed pages must see
  /// every access; scalar fallback keeps buggify draws identical).
  /// Observers are compatible with batching: they hook only slow paths,
  /// which pure-hit windows never take.
  unsigned openRun(int Proc, RunWindow &W, uint64_t MaxIters);

  /// Commits a window opened by openRun after \p FullIters complete
  /// iterations plus the first \p PartialSites sites of one more
  /// iteration (mid-iteration flushes happen on bounds failures and
  /// address mispredictions).  Charges cycles (returned), Loads/Stores,
  /// and replays the interleaved scalar sequence's L1 LRU stamps, TLB
  /// stamps/MRU, page-table memo, and site-memo re-primes via closed
  /// forms -- bit-identical to FullIters*NumSites+PartialSites scalar
  /// batchAccess calls.
  uint64_t commitRun(int Proc, RunWindow &W, unsigned FullIters,
                     int PartialSites);

  /// The run-continuation fast path (RunBatch engines only): a
  /// batchAccess with a cheaper per-access proof against the site's
  /// run memo.  Both tiers require the settled flag for the access
  /// kind and the cached TLB index still mapping the page; then either
  /// (a) the access stays on the cached L1 line (which pins page, L2
  /// line, and translation) and Cache::accessVia's tag revalidation
  /// commits it, or (b) the run crossed into a new L1 line inside the
  /// settled L2 line -- batchAccess's own fast-path proof, minus its
  /// MRU obligation -- and Cache::accessIfHit commits it, re-priming
  /// the line memo.  On success it reproduces the scalar pipeline's
  /// side effects bit-exactly, including the non-MRU case the plain
  /// batchAccess fast path rejects: there the committed access()
  /// pipeline's TLB scan hit, page-memo refresh, and site re-prime are
  /// replayed from cached pointers.  Any failed check falls back to
  /// batchAccess itself (the reference pipeline) and refreshes the
  /// memo from its outcome, so staleness can never diverge.  Delegates
  /// wholesale when a fault injector is attached (fault-armed pages
  /// and buggify draws must see the scalar path).
  uint64_t runAccess(int Proc, uint64_t Addr, unsigned Bytes, bool IsWrite,
                     BatchAccess &Site);

  //===--------------------------------------------------------------===//
  // Functional data (virtual-address keyed; unaffected by placement).
  //===--------------------------------------------------------------===//

  double readF64(uint64_t Addr) const;
  void writeF64(uint64_t Addr, double Value);
  int64_t readI64(uint64_t Addr) const;
  void writeI64(uint64_t Addr, int64_t Value);

  /// Base pointer of the functional-data page holding \p VPage, creating
  /// (zero-filled) if absent.  Thread-safe; the returned pointer stays
  /// valid for the lifetime of the MemorySystem, so callers may cache it
  /// and read/write page bytes directly (distinct byte ranges only).
  uint8_t *funcPageData(uint64_t VPage) const;

  //===--------------------------------------------------------------===//
  // Epochs and statistics.
  //===--------------------------------------------------------------===//

  /// Starts a parallel epoch: zeroes the per-node request counts.
  void beginEpoch();

  /// Wall time of the epoch given the slowest participant's cycle count:
  /// max of computation time and the busiest node's service time.
  uint64_t epochWallTime(uint64_t MaxProcCycles) const;

  /// Requests served by \p Node in the current epoch.
  uint64_t epochNodeRequests(int Node) const {
    return EpochRequests[Node];
  }

  Counters &counters() { return Stats; }
  const Counters &counters() const { return Stats; }
  void resetStats() { Stats = Counters(); }

  /// Attaches (or, with nullptr, detaches) the event observer.  The
  /// observer is invoked only on slow paths -- see numa/Observer.h for
  /// the cost contract.  Not owned.
  void setObserver(SimObserver *O) { Obs = O; }
  SimObserver *observer() const { return Obs; }

  /// Attaches (or, with nullptr, detaches) the fault injector.  Same
  /// contract as the observer: a nullable pointer consulted only on
  /// already-slow paths (placement, migration, fault-in, TLB miss,
  /// memory-level access), so a run without faults pays nothing.  Not
  /// owned.
  void setFaultInjector(fault::Injector *I) { Inj = I; }
  fault::Injector *faultInjector() const { return Inj; }

  /// Drops all cache/TLB contents (not page mappings or data).
  void flushCachesAndTlbs();

  /// Number of mapped pages homed on \p Node (for tests and reports).
  uint64_t pagesOnNode(int Node) const;

private:
  struct PageInfo {
    int Node = -1;
    uint64_t Frame = 0;
    bool Mapped = false;
    /// False for "unbacked" pages mapped when no physical frame could
    /// be found anywhere (true exhaustion, or every node over its
    /// fault-injected cap).  An unbacked page has a unique pseudo
    /// physical address past the real frames, is never freed through
    /// PhysMem, and behaves normally otherwise -- functional data is
    /// virtual-keyed, so only cycle costs are affected.
    bool Backed = false;
  };

  struct ProcState {
    Cache L1;
    Cache L2;
    Tlb Dtlb;
    /// Last page touched by this processor; skips the page-table hash
    /// lookup on the (very common) same-page-as-last-time access.  The
    /// pointer stays valid because Pages entries are never erased.
    uint64_t LastVPage = ~0ull;
    PageInfo *LastPI = nullptr;
    ProcState(const MachineConfig &C)
        : L1(C.L1), L2(C.L2), Dtlb(C.TlbEntries) {}
  };

  /// Returns the page info, faulting it in under the default policy (on
  /// behalf of \p Proc) if unmapped.  \p Cycles accumulates fault cost.
  PageInfo &faultIn(uint64_t VPage, int Proc, uint64_t &Cycles);

  /// Hop-ordered frame allocation honoring fault-injected soft caps:
  /// first pass prefers nodes under cap, second pass (injector only)
  /// breaches caps rather than fail.  \p AvoidPref skips the preferred
  /// node (its placement request was denied).  std::nullopt only when
  /// the machine is truly full.
  std::optional<PhysMem::Allocation>
  allocFrame(int Pref, uint64_t VPage, FrameMode Mode, bool AvoidPref);

  /// Maps \p VPage as an unbacked page homed on \p HomeNode (see
  /// PageInfo::Backed).
  void makeUnbacked(PageInfo &PI, uint64_t VPage, int HomeNode);

  /// Directory actions for an access that reached the coherence point.
  /// Invalidates / downgrades other processors' cached copies as needed.
  /// \p VAddr is the virtual address, used only for observer
  /// attribution.
  uint64_t coherenceAction(int Proc, uint64_t PhysLine, bool IsWrite,
                           int HomeNode, bool PaidMemLatency,
                           uint64_t VAddr);

  /// Invalidates one 128 B coherence unit from a processor's caches.
  bool invalidateLineEverywhere(int Proc, uint64_t PhysLine);

  uint8_t *dataFor(uint64_t Addr, unsigned Bytes) const;

  MachineConfig Config;
  Topology Topo;
  PhysMem Frames;
  Directory Dir;
  PlacementPolicy DefaultPolicy = PlacementPolicy::FirstTouch;
  uint64_t NextVirtual = 1ull << 20;
  uint64_t RoundRobinNext = 0;
  std::unordered_map<uint64_t, PageInfo> Pages;
  /// Functional data may be touched concurrently by the engine's host
  /// worker threads, so page creation is serialized; page contents are
  /// raced only on disjoint byte ranges (data-race-free programs).
  mutable std::mutex DataMu;
  mutable std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> Data;
  std::vector<std::unique_ptr<ProcState>> Procs;
  std::vector<uint64_t> EpochRequests;
  Counters Stats;
  SimObserver *Obs = nullptr;
  fault::Injector *Inj = nullptr;
  /// Sequence number giving unbacked pages unique pseudo frames.
  uint64_t OverflowSeq = 0;
};

} // namespace dsm::numa

#endif // DSM_NUMA_MEMORYSYSTEM_H
