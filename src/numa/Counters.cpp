//===- numa/Counters.cpp - Simulated hardware event counters --------------===//
//
// Part of the dsm-dist-repro project.
//
//===----------------------------------------------------------------------===//

#include "numa/Counters.h"

#include "support/StringUtils.h"

using namespace dsm::numa;

std::string Counters::str() const {
  return dsm::formatString(
      "loads=%llu stores=%llu l1miss=%llu l2miss=%llu tlbmiss=%llu "
      "local=%llu remote=%llu inval=%llu wb=%llu migr=%llu faults=%llu",
      static_cast<unsigned long long>(Loads),
      static_cast<unsigned long long>(Stores),
      static_cast<unsigned long long>(L1Misses),
      static_cast<unsigned long long>(L2Misses),
      static_cast<unsigned long long>(TlbMisses),
      static_cast<unsigned long long>(LocalMemAccesses),
      static_cast<unsigned long long>(RemoteMemAccesses),
      static_cast<unsigned long long>(Invalidations),
      static_cast<unsigned long long>(Writebacks),
      static_cast<unsigned long long>(PageMigrations),
      static_cast<unsigned long long>(PageFaults));
}
