# Empty dependencies file for bench_fig5_transpose.
# This may be replaced when dependencies are built.
