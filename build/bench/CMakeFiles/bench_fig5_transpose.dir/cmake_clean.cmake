file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_transpose.dir/bench_fig5_transpose.cpp.o"
  "CMakeFiles/bench_fig5_transpose.dir/bench_fig5_transpose.cpp.o.d"
  "bench_fig5_transpose"
  "bench_fig5_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
