file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_addressing.dir/bench_table1_addressing.cpp.o"
  "CMakeFiles/bench_table1_addressing.dir/bench_table1_addressing.cpp.o.d"
  "bench_table1_addressing"
  "bench_table1_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
