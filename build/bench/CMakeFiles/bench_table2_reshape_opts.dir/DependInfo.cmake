
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_reshape_opts.cpp" "bench/CMakeFiles/bench_table2_reshape_opts.dir/bench_table2_reshape_opts.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_reshape_opts.dir/bench_table2_reshape_opts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dsm_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dsm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/dsm_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dsm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/dsm_link.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dsm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dsm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/dsm_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
