# Empty compiler generated dependencies file for bench_table2_reshape_opts.
# This may be replaced when dependencies are built.
