file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lu.dir/bench_fig4_lu.cpp.o"
  "CMakeFiles/bench_fig4_lu.dir/bench_fig4_lu.cpp.o.d"
  "bench_fig4_lu"
  "bench_fig4_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
