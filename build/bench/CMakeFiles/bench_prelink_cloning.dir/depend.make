# Empty dependencies file for bench_prelink_cloning.
# This may be replaced when dependencies are built.
