file(REMOVE_RECURSE
  "CMakeFiles/bench_prelink_cloning.dir/bench_prelink_cloning.cpp.o"
  "CMakeFiles/bench_prelink_cloning.dir/bench_prelink_cloning.cpp.o.d"
  "bench_prelink_cloning"
  "bench_prelink_cloning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prelink_cloning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
