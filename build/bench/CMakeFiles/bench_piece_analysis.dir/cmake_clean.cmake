file(REMOVE_RECURSE
  "CMakeFiles/bench_piece_analysis.dir/bench_piece_analysis.cpp.o"
  "CMakeFiles/bench_piece_analysis.dir/bench_piece_analysis.cpp.o.d"
  "bench_piece_analysis"
  "bench_piece_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_piece_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
