# Empty dependencies file for bench_divmod_fp.
# This may be replaced when dependencies are built.
