file(REMOVE_RECURSE
  "CMakeFiles/bench_divmod_fp.dir/bench_divmod_fp.cpp.o"
  "CMakeFiles/bench_divmod_fp.dir/bench_divmod_fp.cpp.o.d"
  "bench_divmod_fp"
  "bench_divmod_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_divmod_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
