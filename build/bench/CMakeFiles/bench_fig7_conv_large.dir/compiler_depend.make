# Empty compiler generated dependencies file for bench_fig7_conv_large.
# This may be replaced when dependencies are built.
