file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_affinity.dir/bench_fig2_affinity.cpp.o"
  "CMakeFiles/bench_fig2_affinity.dir/bench_fig2_affinity.cpp.o.d"
  "bench_fig2_affinity"
  "bench_fig2_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
