# Empty compiler generated dependencies file for dsm_bench_util.
# This may be replaced when dependencies are built.
