file(REMOVE_RECURSE
  "CMakeFiles/dsm_bench_util.dir/BenchUtil.cpp.o"
  "CMakeFiles/dsm_bench_util.dir/BenchUtil.cpp.o.d"
  "libdsm_bench_util.a"
  "libdsm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
