file(REMOVE_RECURSE
  "libdsm_bench_util.a"
)
