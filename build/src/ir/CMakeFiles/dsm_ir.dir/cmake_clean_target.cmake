file(REMOVE_RECURSE
  "libdsm_ir.a"
)
