
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Ir.cpp" "src/ir/CMakeFiles/dsm_ir.dir/Ir.cpp.o" "gcc" "src/ir/CMakeFiles/dsm_ir.dir/Ir.cpp.o.d"
  "/root/repo/src/ir/IrPrinter.cpp" "src/ir/CMakeFiles/dsm_ir.dir/IrPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/dsm_ir.dir/IrPrinter.cpp.o.d"
  "/root/repo/src/ir/IrVerifier.cpp" "src/ir/CMakeFiles/dsm_ir.dir/IrVerifier.cpp.o" "gcc" "src/ir/CMakeFiles/dsm_ir.dir/IrVerifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
