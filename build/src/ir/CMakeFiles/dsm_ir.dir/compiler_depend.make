# Empty compiler generated dependencies file for dsm_ir.
# This may be replaced when dependencies are built.
