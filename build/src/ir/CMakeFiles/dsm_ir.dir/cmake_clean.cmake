file(REMOVE_RECURSE
  "CMakeFiles/dsm_ir.dir/Ir.cpp.o"
  "CMakeFiles/dsm_ir.dir/Ir.cpp.o.d"
  "CMakeFiles/dsm_ir.dir/IrPrinter.cpp.o"
  "CMakeFiles/dsm_ir.dir/IrPrinter.cpp.o.d"
  "CMakeFiles/dsm_ir.dir/IrVerifier.cpp.o"
  "CMakeFiles/dsm_ir.dir/IrVerifier.cpp.o.d"
  "libdsm_ir.a"
  "libdsm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
