file(REMOVE_RECURSE
  "libdsm_lang.a"
)
