# Empty dependencies file for dsm_lang.
# This may be replaced when dependencies are built.
