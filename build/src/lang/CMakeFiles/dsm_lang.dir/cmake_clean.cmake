file(REMOVE_RECURSE
  "CMakeFiles/dsm_lang.dir/Lexer.cpp.o"
  "CMakeFiles/dsm_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/dsm_lang.dir/Parser.cpp.o"
  "CMakeFiles/dsm_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/dsm_lang.dir/Sema.cpp.o"
  "CMakeFiles/dsm_lang.dir/Sema.cpp.o.d"
  "libdsm_lang.a"
  "libdsm_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
