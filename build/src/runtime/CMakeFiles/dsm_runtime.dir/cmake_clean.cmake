file(REMOVE_RECURSE
  "CMakeFiles/dsm_runtime.dir/ArgCheck.cpp.o"
  "CMakeFiles/dsm_runtime.dir/ArgCheck.cpp.o.d"
  "CMakeFiles/dsm_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/dsm_runtime.dir/Runtime.cpp.o.d"
  "libdsm_runtime.a"
  "libdsm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
