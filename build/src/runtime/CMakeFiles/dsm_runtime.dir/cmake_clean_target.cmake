file(REMOVE_RECURSE
  "libdsm_runtime.a"
)
