# Empty compiler generated dependencies file for dsm_runtime.
# This may be replaced when dependencies are built.
