
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numa/Cache.cpp" "src/numa/CMakeFiles/dsm_numa.dir/Cache.cpp.o" "gcc" "src/numa/CMakeFiles/dsm_numa.dir/Cache.cpp.o.d"
  "/root/repo/src/numa/Counters.cpp" "src/numa/CMakeFiles/dsm_numa.dir/Counters.cpp.o" "gcc" "src/numa/CMakeFiles/dsm_numa.dir/Counters.cpp.o.d"
  "/root/repo/src/numa/MemorySystem.cpp" "src/numa/CMakeFiles/dsm_numa.dir/MemorySystem.cpp.o" "gcc" "src/numa/CMakeFiles/dsm_numa.dir/MemorySystem.cpp.o.d"
  "/root/repo/src/numa/PhysMem.cpp" "src/numa/CMakeFiles/dsm_numa.dir/PhysMem.cpp.o" "gcc" "src/numa/CMakeFiles/dsm_numa.dir/PhysMem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
