file(REMOVE_RECURSE
  "libdsm_numa.a"
)
