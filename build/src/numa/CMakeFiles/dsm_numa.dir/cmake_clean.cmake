file(REMOVE_RECURSE
  "CMakeFiles/dsm_numa.dir/Cache.cpp.o"
  "CMakeFiles/dsm_numa.dir/Cache.cpp.o.d"
  "CMakeFiles/dsm_numa.dir/Counters.cpp.o"
  "CMakeFiles/dsm_numa.dir/Counters.cpp.o.d"
  "CMakeFiles/dsm_numa.dir/MemorySystem.cpp.o"
  "CMakeFiles/dsm_numa.dir/MemorySystem.cpp.o.d"
  "CMakeFiles/dsm_numa.dir/PhysMem.cpp.o"
  "CMakeFiles/dsm_numa.dir/PhysMem.cpp.o.d"
  "libdsm_numa.a"
  "libdsm_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
