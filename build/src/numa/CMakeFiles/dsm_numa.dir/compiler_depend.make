# Empty compiler generated dependencies file for dsm_numa.
# This may be replaced when dependencies are built.
