file(REMOVE_RECURSE
  "CMakeFiles/dsm_support.dir/Error.cpp.o"
  "CMakeFiles/dsm_support.dir/Error.cpp.o.d"
  "CMakeFiles/dsm_support.dir/StringUtils.cpp.o"
  "CMakeFiles/dsm_support.dir/StringUtils.cpp.o.d"
  "libdsm_support.a"
  "libdsm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
