# Empty dependencies file for dsm_support.
# This may be replaced when dependencies are built.
