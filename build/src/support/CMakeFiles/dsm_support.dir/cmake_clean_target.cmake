file(REMOVE_RECURSE
  "libdsm_support.a"
)
