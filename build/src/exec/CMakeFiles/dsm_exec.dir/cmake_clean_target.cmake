file(REMOVE_RECURSE
  "libdsm_exec.a"
)
