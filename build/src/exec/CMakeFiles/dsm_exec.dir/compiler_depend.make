# Empty compiler generated dependencies file for dsm_exec.
# This may be replaced when dependencies are built.
