file(REMOVE_RECURSE
  "CMakeFiles/dsm_exec.dir/Engine.cpp.o"
  "CMakeFiles/dsm_exec.dir/Engine.cpp.o.d"
  "libdsm_exec.a"
  "libdsm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
