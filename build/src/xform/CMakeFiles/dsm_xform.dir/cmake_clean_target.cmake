file(REMOVE_RECURSE
  "libdsm_xform.a"
)
