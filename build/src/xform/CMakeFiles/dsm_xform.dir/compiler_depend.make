# Empty compiler generated dependencies file for dsm_xform.
# This may be replaced when dependencies are built.
