
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/LowerReshaped.cpp" "src/xform/CMakeFiles/dsm_xform.dir/LowerReshaped.cpp.o" "gcc" "src/xform/CMakeFiles/dsm_xform.dir/LowerReshaped.cpp.o.d"
  "/root/repo/src/xform/Parallelize.cpp" "src/xform/CMakeFiles/dsm_xform.dir/Parallelize.cpp.o" "gcc" "src/xform/CMakeFiles/dsm_xform.dir/Parallelize.cpp.o.d"
  "/root/repo/src/xform/SerialTile.cpp" "src/xform/CMakeFiles/dsm_xform.dir/SerialTile.cpp.o" "gcc" "src/xform/CMakeFiles/dsm_xform.dir/SerialTile.cpp.o.d"
  "/root/repo/src/xform/Transform.cpp" "src/xform/CMakeFiles/dsm_xform.dir/Transform.cpp.o" "gcc" "src/xform/CMakeFiles/dsm_xform.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dsm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
