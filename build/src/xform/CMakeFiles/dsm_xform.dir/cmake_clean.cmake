file(REMOVE_RECURSE
  "CMakeFiles/dsm_xform.dir/LowerReshaped.cpp.o"
  "CMakeFiles/dsm_xform.dir/LowerReshaped.cpp.o.d"
  "CMakeFiles/dsm_xform.dir/Parallelize.cpp.o"
  "CMakeFiles/dsm_xform.dir/Parallelize.cpp.o.d"
  "CMakeFiles/dsm_xform.dir/SerialTile.cpp.o"
  "CMakeFiles/dsm_xform.dir/SerialTile.cpp.o.d"
  "CMakeFiles/dsm_xform.dir/Transform.cpp.o"
  "CMakeFiles/dsm_xform.dir/Transform.cpp.o.d"
  "libdsm_xform.a"
  "libdsm_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
