file(REMOVE_RECURSE
  "libdsm_dist.a"
)
