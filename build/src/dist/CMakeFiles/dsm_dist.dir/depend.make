# Empty dependencies file for dsm_dist.
# This may be replaced when dependencies are built.
