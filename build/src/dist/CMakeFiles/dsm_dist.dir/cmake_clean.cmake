file(REMOVE_RECURSE
  "CMakeFiles/dsm_dist.dir/ArrayLayout.cpp.o"
  "CMakeFiles/dsm_dist.dir/ArrayLayout.cpp.o.d"
  "CMakeFiles/dsm_dist.dir/DistSpec.cpp.o"
  "CMakeFiles/dsm_dist.dir/DistSpec.cpp.o.d"
  "CMakeFiles/dsm_dist.dir/IndexMap.cpp.o"
  "CMakeFiles/dsm_dist.dir/IndexMap.cpp.o.d"
  "CMakeFiles/dsm_dist.dir/ProcGrid.cpp.o"
  "CMakeFiles/dsm_dist.dir/ProcGrid.cpp.o.d"
  "libdsm_dist.a"
  "libdsm_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
