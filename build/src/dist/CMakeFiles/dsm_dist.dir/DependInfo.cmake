
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/ArrayLayout.cpp" "src/dist/CMakeFiles/dsm_dist.dir/ArrayLayout.cpp.o" "gcc" "src/dist/CMakeFiles/dsm_dist.dir/ArrayLayout.cpp.o.d"
  "/root/repo/src/dist/DistSpec.cpp" "src/dist/CMakeFiles/dsm_dist.dir/DistSpec.cpp.o" "gcc" "src/dist/CMakeFiles/dsm_dist.dir/DistSpec.cpp.o.d"
  "/root/repo/src/dist/IndexMap.cpp" "src/dist/CMakeFiles/dsm_dist.dir/IndexMap.cpp.o" "gcc" "src/dist/CMakeFiles/dsm_dist.dir/IndexMap.cpp.o.d"
  "/root/repo/src/dist/ProcGrid.cpp" "src/dist/CMakeFiles/dsm_dist.dir/ProcGrid.cpp.o" "gcc" "src/dist/CMakeFiles/dsm_dist.dir/ProcGrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
