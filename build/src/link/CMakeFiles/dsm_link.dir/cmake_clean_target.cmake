file(REMOVE_RECURSE
  "libdsm_link.a"
)
