# Empty compiler generated dependencies file for dsm_link.
# This may be replaced when dependencies are built.
