file(REMOVE_RECURSE
  "CMakeFiles/dsm_link.dir/Linker.cpp.o"
  "CMakeFiles/dsm_link.dir/Linker.cpp.o.d"
  "libdsm_link.a"
  "libdsm_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
