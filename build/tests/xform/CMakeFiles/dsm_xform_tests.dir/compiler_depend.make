# Empty compiler generated dependencies file for dsm_xform_tests.
# This may be replaced when dependencies are built.
