file(REMOVE_RECURSE
  "CMakeFiles/dsm_xform_tests.dir/LoweringTest.cpp.o"
  "CMakeFiles/dsm_xform_tests.dir/LoweringTest.cpp.o.d"
  "CMakeFiles/dsm_xform_tests.dir/OptLevelTest.cpp.o"
  "CMakeFiles/dsm_xform_tests.dir/OptLevelTest.cpp.o.d"
  "CMakeFiles/dsm_xform_tests.dir/ScheduleTest.cpp.o"
  "CMakeFiles/dsm_xform_tests.dir/ScheduleTest.cpp.o.d"
  "CMakeFiles/dsm_xform_tests.dir/SkewTest.cpp.o"
  "CMakeFiles/dsm_xform_tests.dir/SkewTest.cpp.o.d"
  "CMakeFiles/dsm_xform_tests.dir/StructureTest.cpp.o"
  "CMakeFiles/dsm_xform_tests.dir/StructureTest.cpp.o.d"
  "dsm_xform_tests"
  "dsm_xform_tests.pdb"
  "dsm_xform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_xform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
