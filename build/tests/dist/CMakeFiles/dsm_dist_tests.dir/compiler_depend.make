# Empty compiler generated dependencies file for dsm_dist_tests.
# This may be replaced when dependencies are built.
