
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/ArrayLayoutTest.cpp" "tests/dist/CMakeFiles/dsm_dist_tests.dir/ArrayLayoutTest.cpp.o" "gcc" "tests/dist/CMakeFiles/dsm_dist_tests.dir/ArrayLayoutTest.cpp.o.d"
  "/root/repo/tests/dist/IndexMapTest.cpp" "tests/dist/CMakeFiles/dsm_dist_tests.dir/IndexMapTest.cpp.o" "gcc" "tests/dist/CMakeFiles/dsm_dist_tests.dir/IndexMapTest.cpp.o.d"
  "/root/repo/tests/dist/ProcGridTest.cpp" "tests/dist/CMakeFiles/dsm_dist_tests.dir/ProcGridTest.cpp.o" "gcc" "tests/dist/CMakeFiles/dsm_dist_tests.dir/ProcGridTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
