file(REMOVE_RECURSE
  "CMakeFiles/dsm_dist_tests.dir/ArrayLayoutTest.cpp.o"
  "CMakeFiles/dsm_dist_tests.dir/ArrayLayoutTest.cpp.o.d"
  "CMakeFiles/dsm_dist_tests.dir/IndexMapTest.cpp.o"
  "CMakeFiles/dsm_dist_tests.dir/IndexMapTest.cpp.o.d"
  "CMakeFiles/dsm_dist_tests.dir/ProcGridTest.cpp.o"
  "CMakeFiles/dsm_dist_tests.dir/ProcGridTest.cpp.o.d"
  "dsm_dist_tests"
  "dsm_dist_tests.pdb"
  "dsm_dist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_dist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
