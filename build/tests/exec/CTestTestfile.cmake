# CMake generated Testfile for 
# Source directory: /root/repo/tests/exec
# Build directory: /root/repo/build/tests/exec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/exec/dsm_exec_tests[1]_include.cmake")
