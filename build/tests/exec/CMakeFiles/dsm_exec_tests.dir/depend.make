# Empty dependencies file for dsm_exec_tests.
# This may be replaced when dependencies are built.
