file(REMOVE_RECURSE
  "CMakeFiles/dsm_exec_tests.dir/ArgCheckTest.cpp.o"
  "CMakeFiles/dsm_exec_tests.dir/ArgCheckTest.cpp.o.d"
  "CMakeFiles/dsm_exec_tests.dir/EngineFeaturesTest.cpp.o"
  "CMakeFiles/dsm_exec_tests.dir/EngineFeaturesTest.cpp.o.d"
  "CMakeFiles/dsm_exec_tests.dir/EngineTest.cpp.o"
  "CMakeFiles/dsm_exec_tests.dir/EngineTest.cpp.o.d"
  "dsm_exec_tests"
  "dsm_exec_tests.pdb"
  "dsm_exec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_exec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
