file(REMOVE_RECURSE
  "CMakeFiles/dsm_lang_tests.dir/LexerTest.cpp.o"
  "CMakeFiles/dsm_lang_tests.dir/LexerTest.cpp.o.d"
  "CMakeFiles/dsm_lang_tests.dir/ParserTest.cpp.o"
  "CMakeFiles/dsm_lang_tests.dir/ParserTest.cpp.o.d"
  "CMakeFiles/dsm_lang_tests.dir/SemaTest.cpp.o"
  "CMakeFiles/dsm_lang_tests.dir/SemaTest.cpp.o.d"
  "dsm_lang_tests"
  "dsm_lang_tests.pdb"
  "dsm_lang_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_lang_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
