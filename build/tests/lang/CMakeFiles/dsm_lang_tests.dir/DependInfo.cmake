
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/LexerTest.cpp" "tests/lang/CMakeFiles/dsm_lang_tests.dir/LexerTest.cpp.o" "gcc" "tests/lang/CMakeFiles/dsm_lang_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/lang/ParserTest.cpp" "tests/lang/CMakeFiles/dsm_lang_tests.dir/ParserTest.cpp.o" "gcc" "tests/lang/CMakeFiles/dsm_lang_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/lang/SemaTest.cpp" "tests/lang/CMakeFiles/dsm_lang_tests.dir/SemaTest.cpp.o" "gcc" "tests/lang/CMakeFiles/dsm_lang_tests.dir/SemaTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/dsm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dsm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
