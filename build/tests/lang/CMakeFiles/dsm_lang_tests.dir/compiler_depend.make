# Empty compiler generated dependencies file for dsm_lang_tests.
# This may be replaced when dependencies are built.
