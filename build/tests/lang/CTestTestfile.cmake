# CMake generated Testfile for 
# Source directory: /root/repo/tests/lang
# Build directory: /root/repo/build/tests/lang
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lang/dsm_lang_tests[1]_include.cmake")
