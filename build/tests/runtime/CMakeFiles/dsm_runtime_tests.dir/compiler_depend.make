# Empty compiler generated dependencies file for dsm_runtime_tests.
# This may be replaced when dependencies are built.
