file(REMOVE_RECURSE
  "CMakeFiles/dsm_runtime_tests.dir/ArgCheckUnitTest.cpp.o"
  "CMakeFiles/dsm_runtime_tests.dir/ArgCheckUnitTest.cpp.o.d"
  "CMakeFiles/dsm_runtime_tests.dir/RuntimeTest.cpp.o"
  "CMakeFiles/dsm_runtime_tests.dir/RuntimeTest.cpp.o.d"
  "dsm_runtime_tests"
  "dsm_runtime_tests.pdb"
  "dsm_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
