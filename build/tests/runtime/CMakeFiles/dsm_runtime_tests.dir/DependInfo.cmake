
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/ArgCheckUnitTest.cpp" "tests/runtime/CMakeFiles/dsm_runtime_tests.dir/ArgCheckUnitTest.cpp.o" "gcc" "tests/runtime/CMakeFiles/dsm_runtime_tests.dir/ArgCheckUnitTest.cpp.o.d"
  "/root/repo/tests/runtime/RuntimeTest.cpp" "tests/runtime/CMakeFiles/dsm_runtime_tests.dir/RuntimeTest.cpp.o" "gcc" "tests/runtime/CMakeFiles/dsm_runtime_tests.dir/RuntimeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dsm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/dsm_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
