# Empty dependencies file for dsm_ir_tests.
# This may be replaced when dependencies are built.
