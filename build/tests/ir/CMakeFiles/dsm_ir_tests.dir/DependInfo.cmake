
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/IrTest.cpp" "tests/ir/CMakeFiles/dsm_ir_tests.dir/IrTest.cpp.o" "gcc" "tests/ir/CMakeFiles/dsm_ir_tests.dir/IrTest.cpp.o.d"
  "/root/repo/tests/ir/VerifierTest.cpp" "tests/ir/CMakeFiles/dsm_ir_tests.dir/VerifierTest.cpp.o" "gcc" "tests/ir/CMakeFiles/dsm_ir_tests.dir/VerifierTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/dsm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsm_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
