file(REMOVE_RECURSE
  "CMakeFiles/dsm_ir_tests.dir/IrTest.cpp.o"
  "CMakeFiles/dsm_ir_tests.dir/IrTest.cpp.o.d"
  "CMakeFiles/dsm_ir_tests.dir/VerifierTest.cpp.o"
  "CMakeFiles/dsm_ir_tests.dir/VerifierTest.cpp.o.d"
  "dsm_ir_tests"
  "dsm_ir_tests.pdb"
  "dsm_ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
