# Empty compiler generated dependencies file for dsm_link_tests.
# This may be replaced when dependencies are built.
