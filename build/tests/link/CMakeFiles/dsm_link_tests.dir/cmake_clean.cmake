file(REMOVE_RECURSE
  "CMakeFiles/dsm_link_tests.dir/LinkerTest.cpp.o"
  "CMakeFiles/dsm_link_tests.dir/LinkerTest.cpp.o.d"
  "dsm_link_tests"
  "dsm_link_tests.pdb"
  "dsm_link_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_link_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
