# Empty compiler generated dependencies file for dsm_numa_tests.
# This may be replaced when dependencies are built.
