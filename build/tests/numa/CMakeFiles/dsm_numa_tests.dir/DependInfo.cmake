
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/numa/CacheTest.cpp" "tests/numa/CMakeFiles/dsm_numa_tests.dir/CacheTest.cpp.o" "gcc" "tests/numa/CMakeFiles/dsm_numa_tests.dir/CacheTest.cpp.o.d"
  "/root/repo/tests/numa/ColoringContentionTest.cpp" "tests/numa/CMakeFiles/dsm_numa_tests.dir/ColoringContentionTest.cpp.o" "gcc" "tests/numa/CMakeFiles/dsm_numa_tests.dir/ColoringContentionTest.cpp.o.d"
  "/root/repo/tests/numa/MemoryPropertyTest.cpp" "tests/numa/CMakeFiles/dsm_numa_tests.dir/MemoryPropertyTest.cpp.o" "gcc" "tests/numa/CMakeFiles/dsm_numa_tests.dir/MemoryPropertyTest.cpp.o.d"
  "/root/repo/tests/numa/MemorySystemTest.cpp" "tests/numa/CMakeFiles/dsm_numa_tests.dir/MemorySystemTest.cpp.o" "gcc" "tests/numa/CMakeFiles/dsm_numa_tests.dir/MemorySystemTest.cpp.o.d"
  "/root/repo/tests/numa/PhysMemTest.cpp" "tests/numa/CMakeFiles/dsm_numa_tests.dir/PhysMemTest.cpp.o" "gcc" "tests/numa/CMakeFiles/dsm_numa_tests.dir/PhysMemTest.cpp.o.d"
  "/root/repo/tests/numa/TopologyTest.cpp" "tests/numa/CMakeFiles/dsm_numa_tests.dir/TopologyTest.cpp.o" "gcc" "tests/numa/CMakeFiles/dsm_numa_tests.dir/TopologyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numa/CMakeFiles/dsm_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
