file(REMOVE_RECURSE
  "CMakeFiles/dsm_numa_tests.dir/CacheTest.cpp.o"
  "CMakeFiles/dsm_numa_tests.dir/CacheTest.cpp.o.d"
  "CMakeFiles/dsm_numa_tests.dir/ColoringContentionTest.cpp.o"
  "CMakeFiles/dsm_numa_tests.dir/ColoringContentionTest.cpp.o.d"
  "CMakeFiles/dsm_numa_tests.dir/MemoryPropertyTest.cpp.o"
  "CMakeFiles/dsm_numa_tests.dir/MemoryPropertyTest.cpp.o.d"
  "CMakeFiles/dsm_numa_tests.dir/MemorySystemTest.cpp.o"
  "CMakeFiles/dsm_numa_tests.dir/MemorySystemTest.cpp.o.d"
  "CMakeFiles/dsm_numa_tests.dir/PhysMemTest.cpp.o"
  "CMakeFiles/dsm_numa_tests.dir/PhysMemTest.cpp.o.d"
  "CMakeFiles/dsm_numa_tests.dir/TopologyTest.cpp.o"
  "CMakeFiles/dsm_numa_tests.dir/TopologyTest.cpp.o.d"
  "dsm_numa_tests"
  "dsm_numa_tests.pdb"
  "dsm_numa_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_numa_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
