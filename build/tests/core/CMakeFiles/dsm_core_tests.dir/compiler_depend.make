# Empty compiler generated dependencies file for dsm_core_tests.
# This may be replaced when dependencies are built.
