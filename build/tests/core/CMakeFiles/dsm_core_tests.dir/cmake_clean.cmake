file(REMOVE_RECURSE
  "CMakeFiles/dsm_core_tests.dir/IntegrationTest.cpp.o"
  "CMakeFiles/dsm_core_tests.dir/IntegrationTest.cpp.o.d"
  "dsm_core_tests"
  "dsm_core_tests.pdb"
  "dsm_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
