file(REMOVE_RECURSE
  "CMakeFiles/error_detection.dir/error_detection.cpp.o"
  "CMakeFiles/error_detection.dir/error_detection.cpp.o.d"
  "error_detection"
  "error_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
