file(REMOVE_RECURSE
  "CMakeFiles/transpose_policies.dir/transpose_policies.cpp.o"
  "CMakeFiles/transpose_policies.dir/transpose_policies.cpp.o.d"
  "transpose_policies"
  "transpose_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
