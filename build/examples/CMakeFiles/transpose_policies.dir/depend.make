# Empty dependencies file for transpose_policies.
# This may be replaced when dependencies are built.
