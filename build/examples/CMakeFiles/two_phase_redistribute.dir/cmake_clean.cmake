file(REMOVE_RECURSE
  "CMakeFiles/two_phase_redistribute.dir/two_phase_redistribute.cpp.o"
  "CMakeFiles/two_phase_redistribute.dir/two_phase_redistribute.cpp.o.d"
  "two_phase_redistribute"
  "two_phase_redistribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_redistribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
