# Empty compiler generated dependencies file for two_phase_redistribute.
# This may be replaced when dependencies are built.
